// Bit-exact text serialization of a full Prediction — the read/write seam
// the serving layer's snapshot format is built on.
//
// Mirrors write_csv's round-trip guarantee and extends it: every double is
// formatted so that reading it back reproduces the identical bit pattern
// (max_digits10 decimal for finite values; "inf"/"-inf"/"nan" survive too,
// parsed with strtod rather than istream extraction, which rejects them).
// Category and kernel names may contain spaces and commas; names are
// written as the remainder of their line, so any single-line string
// round-trips. The format is line-oriented and self-terminating
// ("end prediction"), so multiple predictions can share one stream and a
// reader always knows where one record stops.
//
// read_prediction is a *validating* parser: sizes must be mutually
// consistent, kernel names known, parameter-vector lengths must match
// kernel_param_count, and every numeric cell must parse in full. Malformed
// input throws std::invalid_argument with the offending line — it never
// returns a Prediction that could index out of bounds downstream. This is
// what lets the snapshot loader treat "checksum passed but content
// invalid" as a skippable entry instead of undefined behaviour.
#pragma once

#include <iosfwd>

#include "core/predictor.hpp"

namespace estima::core {

/// Serialises every field of the prediction (answer fields *and* the
/// work-accounting stats — a cached entry restores exactly as it was).
void write_prediction(std::ostream& os, const Prediction& p);

/// Parses one prediction record from the stream, consuming through its
/// "end prediction" terminator. Throws std::invalid_argument on any
/// malformed or inconsistent content.
Prediction read_prediction(std::istream& is);

}  // namespace estima::core
