#include "core/fit_audit.hpp"

#include <cmath>

#include "obs/histogram.hpp"

namespace estima::core {

const char* fit_outcome_name(FitOutcome o) {
  switch (o) {
    case FitOutcome::kConverged: return "converged";
    case FitOutcome::kMaxIter: return "max-iter";
    case FitOutcome::kNoProgress: return "no-progress";
    case FitOutcome::kCholeskyFail: return "cholesky-fail";
    case FitOutcome::kNudgeExhausted: return "nudge-exhausted";
    case FitOutcome::kNoFit: return "no-fit";
    case FitOutcome::kUnrealisticStrict: return "unrealistic-strict";
    case FitOutcome::kUnrealisticRelaxed: return "unrealistic-relaxed";
    case FitOutcome::kWorseRmse: return "worse-rmse";
    case FitOutcome::kWinner: return "winner";
    case FitOutcome::kCancelled: return "cancelled";
  }
  return "unknown";
}

FitOutcome fit_outcome_from_term(numeric::LevMarTermination t) {
  switch (t) {
    case numeric::LevMarTermination::kConverged: return FitOutcome::kConverged;
    case numeric::LevMarTermination::kMaxIterations: return FitOutcome::kMaxIter;
    case numeric::LevMarTermination::kNoProgress: return FitOutcome::kNoProgress;
    case numeric::LevMarTermination::kCholeskyFail:
      return FitOutcome::kCholeskyFail;
    case numeric::LevMarTermination::kNudgeExhausted:
      return FitOutcome::kNudgeExhausted;
    case numeric::LevMarTermination::kNonFinite: return FitOutcome::kNoFit;
    case numeric::LevMarTermination::kNone: return FitOutcome::kNoFit;
  }
  return FitOutcome::kNoFit;
}

void FitMetrics::init(obs::Registry& reg) {
  for (std::size_t k = 0; k < kKernels; ++k) {
    const std::string kname = kernel_name(kAllKernels[k]);
    for (std::size_t o = 0; o < kFitOutcomeCount; ++o) {
      attempts[k][o] = reg.counter(
          "estima_fit_attempts_total",
          "kernel=\"" + kname + "\",outcome=\"" +
              fit_outcome_name(static_cast<FitOutcome>(o)) + "\"",
          "Fit attempts and candidate scorings by kernel and outcome");
    }
    fit_seconds[k] = reg.histogram(
        "estima_fit_seconds", "kernel=\"" + kname + "\"",
        "Wall time of one fit job (all prefixes of a kernel batch, or one "
        "reference-engine fit) by kernel");
  }
}

void FitMetrics::count(KernelType kernel, FitOutcome outcome,
                       std::uint64_t n) {
  if (n == 0) return;
  for (std::size_t k = 0; k < kKernels; ++k) {
    if (kAllKernels[k] == kernel) {
      obs::Counter* c = attempts[k][static_cast<std::size_t>(outcome)];
      if (c != nullptr) c->add(n);
      return;
    }
  }
}

void FitMetrics::record_fit_seconds(KernelType kernel, double seconds) {
  if (!(seconds >= 0.0) || !std::isfinite(seconds)) return;
  for (std::size_t k = 0; k < kKernels; ++k) {
    if (kAllKernels[k] == kernel) {
      obs::Histogram* h = fit_seconds[k];
      if (h != nullptr) {
        h->record(static_cast<std::uint64_t>(seconds * 1e9));
      }
      return;
    }
  }
}

}  // namespace estima::core
