// Checkpoint-based series extrapolation (Section 3.1.2, Figure 4).
//
// Given m measurements of one stall-cycle category, ESTIMA:
//  1. designates the c highest-core-count measurements as checkpoints
//     (c in {2, 4} by default);
//  2. fits every Table-1 kernel on each prefix i = 3..n of the remaining
//     n = m - c points, discarding unrealistic fits;
//  3. scores every candidate by RMSE at the checkpoints;
//  4. keeps the minimiser and uses it to extrapolate.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/fit_engine.hpp"
#include "core/kernels.hpp"

namespace estima::core {

struct ExtrapolationConfig {
  /// Checkpoint counts to try; the paper's experiments use 2 and 4.
  std::vector<int> checkpoint_counts = {2, 4};
  int min_prefix = 3;           ///< smallest prefix length fitted
  double target_max_cores = 64; ///< realism + extrapolation horizon
  RealismOptions realism;       ///< range is overwritten from target_max
  FitOptions fit;
};

/// One scored candidate fit (kept for diagnostics / bench output).
struct CandidateFit {
  FittedFunction fn;
  int prefix_len = 0;
  int checkpoints = 0;
  double checkpoint_rmse = 0.0;
};

/// The outcome of extrapolating one series.
struct SeriesExtrapolation {
  FittedFunction best;
  double checkpoint_rmse = 0.0;
  int chosen_prefix = 0;
  int chosen_checkpoints = 0;
  std::size_t candidates_considered = 0;
  std::size_t candidates_realistic = 0;

  std::vector<double> predict(const std::vector<int>& cores) const {
    return best.eval_many(cores);
  }
};

/// Extrapolates one series of (cores, values). Returns std::nullopt when no
/// realistic candidate exists (degenerate input, fewer than min_prefix + 1
/// points, ...).
std::optional<SeriesExtrapolation> extrapolate_series(
    const std::vector<int>& cores, const std::vector<double>& values,
    const ExtrapolationConfig& cfg);

/// Enumerates every realistic candidate (used by the scaling-factor step,
/// which selects by correlation rather than checkpoint RMSE, and by tests).
std::vector<CandidateFit> enumerate_candidates(
    const std::vector<int>& cores, const std::vector<double>& values,
    const ExtrapolationConfig& cfg);

}  // namespace estima::core
