// Checkpoint-based series extrapolation (Section 3.1.2, Figure 4).
//
// Given m measurements of one stall-cycle category, ESTIMA:
//  1. designates the c highest-core-count measurements as checkpoints
//     (c in {2, 4} by default);
//  2. fits every Table-1 kernel on each prefix i = 3..n of the remaining
//     n = m - c points, discarding unrealistic fits;
//  3. scores every candidate by RMSE at the checkpoints;
//  4. keeps the minimiser and uses it to extrapolate.
//
// The fit of a (kernel, prefix) pair depends only on the prefix, never on
// the checkpoint setting, so by default the enumeration memoizes fits
// across checkpoint settings and only re-scores the cached fit against
// each checkpoint set. The (kernel, prefix) fit jobs are independent and
// can be fanned out across a parallel::ThreadPool; candidate assembly and
// scoring stay serial in a fixed order, so results are bit-identical
// regardless of memoization or thread count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/deadline.hpp"
#include "core/fit_engine.hpp"
#include "core/kernels.hpp"

namespace estima::parallel {
class ThreadPool;
}  // namespace estima::parallel

namespace estima::obs {
class TraceContext;
}  // namespace estima::obs

namespace estima::core {

struct FitAudit;
struct FitMetrics;
class FitMemo;

/// Which fitting pipeline executes the (kernel, prefix) jobs. Both produce
/// bit-identical candidates — the batched engine restructures the *work*
/// (SoA panels, lockstep LM, shared tables), never the arithmetic — so
/// this knob, like `memoize_fits` and `pool`, is excluded from
/// config_signature.
enum class FitEngine {
  /// Per-prefix batched jobs: all six kernels fitted in one pass over
  /// shared EvalTables, LM starts advanced in lockstep, realism walks
  /// scanned over precomputed grids. The default.
  kBatched,
  /// The scalar per-(kernel, prefix) path: one fit_kernel / is_realistic
  /// call per job. Kept runnable as the bit-identity oracle and the
  /// benchmark baseline.
  kReference,
};

struct ExtrapolationConfig {
  /// Checkpoint counts to try; the paper's experiments use 2 and 4.
  std::vector<int> checkpoint_counts = {2, 4};
  int min_prefix = 3;           ///< smallest prefix length fitted
  double target_max_cores = 64; ///< realism + extrapolation horizon
  RealismOptions realism;       ///< range is overwritten from target_max
  FitOptions fit;
  /// Fit each (kernel, prefix) pair once and reuse it across checkpoint
  /// settings. Off = the brute-force reference (one fit per candidate),
  /// kept runnable for benchmarking and regression testing.
  bool memoize_fits = true;
  /// Which pipeline executes the fits (bit-identical either way).
  FitEngine engine = FitEngine::kBatched;
  /// Fan the independent fit jobs (and, in predict(), the independent
  /// stall categories) out across this pool. Null = single-threaded.
  parallel::ThreadPool* pool = nullptr;
  /// Cooperative cancellation: fit jobs poll this between fits and stop
  /// early once it expires. An enumeration that observed expiry returns
  /// EMPTY candidate lists (a partial enumeration must never be scored)
  /// and reports the skips in EnumerationStats::fits_cancelled; it does
  /// not throw — callers decide, in serial context, whether to raise
  /// DeadlineExceeded. Null = never cancelled. Like `pool`, this knob
  /// cannot change produced values, only whether they are produced.
  const Deadline* deadline = nullptr;
  /// Observability seam, threaded exactly like `deadline`: when set, the
  /// fit jobs record `fit.levmar` (kernel fitting) and `fit.realism`
  /// (filter evaluation) spans into it. These are nested, per-worker
  /// spans — their sums aggregate CPU time across the pool. Null (the
  /// default) compiles the timing away to one branch; like `pool` and
  /// `deadline`, this knob cannot change produced values.
  obs::TraceContext* trace = nullptr;
  /// Fit-audit sink, threaded exactly like `trace`: when set, the
  /// enumeration appends one FitAttempt per (kernel, prefix, start)
  /// executed and one FitCandidate per (kernel, prefix) slot, emitted in
  /// serial context in the fixed slot order from per-slot data — so the
  /// records are bit-identical across engines and pool sizes. NOT
  /// thread-safe: each enumeration needs its own sink (predict() hands
  /// every category its own via PredictionAudit). Excluded from
  /// config_signature; cannot change produced values.
  FitAudit* audit = nullptr;
  /// Per-kernel fit metrics (attempt/outcome counters plus fit-time
  /// histograms). Thread-safe and shareable process-wide. Excluded from
  /// config_signature; cannot change produced values.
  FitMetrics* metrics = nullptr;
  /// Cross-prediction (kernel, prefix) fit memo for streaming campaigns:
  /// when set, fit jobs whose full input (kernel, FitOptions, prefix
  /// data bits) is already memoized replay the stored fit + FitDiag
  /// instead of executing, and executed fits are inserted for the next
  /// call. Thread-safe; threaded exactly like `pool`/`audit` and, like
  /// them, excluded from config_signature — the replayed fit is the
  /// bit-identical outcome of the execution it stands in for, so
  /// candidates, audits and work accounting are unchanged (only
  /// EnumerationStats::memo_hits and the wall time move). Null = every
  /// fit executes.
  FitMemo* memo = nullptr;
};

/// One scored candidate fit (kept for diagnostics / bench output).
struct CandidateFit {
  FittedFunction fn;
  int prefix_len = 0;
  int checkpoints = 0;
  double checkpoint_rmse = 0.0;
};

/// Work accounting for one enumeration, reported by enumerate_candidates
/// so callers never have to re-derive the combinatorics.
struct EnumerationStats {
  /// kernel x prefix x checkpoint-setting combinations considered, summed
  /// over every realism filter scored.
  std::size_t candidates_attempted = 0;
  /// fit_kernel invocations actually executed.
  std::size_t fits_executed = 0;
  /// Refits avoided by sharing: the (kernel, prefix) cache across
  /// checkpoint settings plus the fit pool across realism filters. Zero
  /// when memoization is off and a single filter is scored.
  std::size_t duplicate_fits_eliminated = 0;
  /// Realism filters scored against this enumeration's shared fit pool
  /// (1 for the single-filter entry points).
  std::size_t realism_variants = 1;
  /// Fit executions the additional realism filters reused instead of
  /// rerunning — a strict-then-relaxed retry would refit everything.
  std::size_t variant_refits_avoided = 0;
  /// Model point evaluations consumed by Levenberg-Marquardt refinement.
  /// Maintained by the batched engine (the reference engine leaves it 0);
  /// like every accounting field it is outside the bit-identity contract
  /// and not serialised.
  std::size_t levmar_point_evals = 0;
  /// Fit jobs answered from cfg.memo instead of executing. Counted inside
  /// fits_executed (a memo hit replays an execution, it does not change
  /// the enumeration's job ledger — fits_executed is serialised and must
  /// stay identical with or without a memo); like levmar_point_evals this
  /// field is accounting only, never serialised.
  std::size_t memo_hits = 0;
  /// Fit jobs skipped because cfg.deadline expired mid-enumeration. Any
  /// nonzero value means the candidate lists were abandoned (returned
  /// empty) and the caller should treat the computation as cancelled.
  std::size_t fits_cancelled = 0;
  /// Fit jobs abandoned because a workspace allocation failed. Nonzero
  /// means the candidate lists were abandoned (returned empty): dropping
  /// just the failed candidates could silently change which fit wins.
  std::size_t fits_aborted = 0;
};

/// The outcome of extrapolating one series.
struct SeriesExtrapolation {
  FittedFunction best;
  double checkpoint_rmse = 0.0;
  int chosen_prefix = 0;
  int chosen_checkpoints = 0;
  std::size_t candidates_considered = 0;
  std::size_t candidates_realistic = 0;
  std::size_t fits_executed = 0;
  std::size_t duplicate_fits_eliminated = 0;
  /// LM point evaluations spent by the batched engine (0 under kReference);
  /// accounting only, never serialised.
  std::size_t levmar_point_evals = 0;

  std::vector<double> predict(const std::vector<int>& cores) const {
    return best.eval_many(cores);
  }
};

/// Extrapolates one series of (cores, values). Returns std::nullopt when no
/// realistic candidate exists (degenerate input, fewer than min_prefix + 1
/// points, ...). When `stats` is non-null it receives the enumeration's
/// work accounting even on failure — callers that fall back to a constant
/// extension can still report the fits that were executed.
std::optional<SeriesExtrapolation> extrapolate_series(
    const std::vector<int>& cores, const std::vector<double>& values,
    const ExtrapolationConfig& cfg, EnumerationStats* stats = nullptr);

/// Enumerates every realistic candidate (used by the scaling-factor step,
/// which selects by correlation rather than checkpoint RMSE, and by tests).
/// Candidate order is fixed (checkpoint setting, then prefix, then kernel)
/// and identical for every memoize_fits / pool combination. When `stats`
/// is non-null it receives the work accounting of this enumeration.
std::vector<CandidateFit> enumerate_candidates(
    const std::vector<int>& cores, const std::vector<double>& values,
    const ExtrapolationConfig& cfg, EnumerationStats* stats = nullptr);

/// Enumerates candidates once per realism filter while executing every
/// (kernel, prefix) fit at most once across all filters: a fit depends
/// only on the data, the filters merely gate which fits become candidates,
/// so filter sweeps (predict()'s strict + relaxed scaling-factor realism)
/// share the fit pool and only re-score. Returns one candidate list per
/// filter, element-for-element identical to what enumerate_candidates
/// would return with cfg.realism = realism_filters[v]. cfg.realism itself
/// is ignored. At most 64 filters per call (throws std::invalid_argument).
std::vector<std::vector<CandidateFit>> enumerate_candidates_filtered(
    const std::vector<int>& cores, const std::vector<double>& values,
    const ExtrapolationConfig& cfg,
    const std::vector<RealismOptions>& realism_filters,
    EnumerationStats* stats = nullptr);

/// Marks `best` as the winner of an enumeration in `audit`: upgrades the
/// matching candidate record to FitOutcome::kWinner and fills the winner
/// scorecard — the held-out checkpoint cores, the winning fit's scalar
/// predictions there, and the measured values (scalar evaluation, so the
/// scorecard is bit-identical across engines). Bumps the per-kernel
/// winner counter when `metrics` is set. No-op when both are null.
void audit_mark_winner(FitAudit* audit, FitMetrics* metrics,
                       const CandidateFit& best,
                       const std::vector<int>& cores,
                       const std::vector<double>& values);

}  // namespace estima::core
