#include "core/fit_memo.hpp"

#include <cstring>

#include "core/hash.hpp"

namespace estima::core {
namespace {

// Raw bit-pattern feed: Fnv1a::f64 canonicalizes -0.0 and NaN payloads,
// which is right for campaign identity but too loose here — the identity
// contract promises replay only against bit-equal inputs.
inline void raw_f64(Fnv1a& h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  h.u64(bits);
}

}  // namespace

std::uint64_t FitMemo::key_of(KernelType type, const double* xs,
                              const double* ys, std::size_t prefix,
                              const FitOptions& opts) {
  Fnv1a h;
  h.u64(static_cast<std::uint64_t>(type));
  raw_f64(h, opts.ridge_lambda);
  h.i64(opts.levmar_max_iterations);
  h.u64(prefix);
  for (std::size_t i = 0; i < prefix; ++i) raw_f64(h, xs[i]);
  for (std::size_t i = 0; i < prefix; ++i) raw_f64(h, ys[i]);
  return h.value();
}

bool FitMemo::lookup(std::uint64_t key, FitMemoEntry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  if (out != nullptr) *out = it->second;
  return true;
}

void FitMemo::insert(std::uint64_t key, FitMemoEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  map_[key] = std::move(entry);
}

FitMemoStats FitMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FitMemoStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = map_.size();
  return s;
}

void FitMemo::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

}  // namespace estima::core
