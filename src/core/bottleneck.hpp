// Bottleneck identification from extrapolated stall categories
// (Section 4.6): rank the categories by their predicted contribution at the
// target core count and report growth relative to the measured range.
#pragma once

#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/predictor.hpp"

namespace estima::core {

struct BottleneckEntry {
  std::string category;
  StallDomain domain = StallDomain::kHardwareBackend;
  double share_at_target = 0.0;   ///< fraction of total stalls at target
  double share_at_measured = 0.0; ///< fraction at the last measured point
  double growth_factor = 0.0;     ///< value(target) / value(last measured)
};

struct BottleneckReport {
  int target_cores = 0;
  int measured_cores = 0;
  std::vector<BottleneckEntry> entries;  ///< sorted by share_at_target desc

  /// Render as an aligned text table (what the CLI/examples print).
  std::string to_string() const;
};

/// Builds the report from a prediction and the measurement it came from.
/// `target_cores` must be one of pred.cores.
BottleneckReport analyze_bottlenecks(const Prediction& pred,
                                     const MeasurementSet& ms,
                                     int target_cores);

}  // namespace estima::core
