#include "core/kernels.hpp"

#include <cmath>
#include <stdexcept>

namespace estima::core {
namespace {

// Per-point kernel forms, shared verbatim by the scalar, batched and SoA
// panel entry points so all three agree bit-for-bit. The arithmetic
// reproduces the original power-accumulation loops exactly: sums associate
// left starting from the accumulator seed (0.0 for numerators, 1.0 for
// denominators) and powers are built by repeated multiplication
// (n2 = n * n, n3 = n2 * n), so the restructuring cannot move a rounding.
// The leading `0.0 +` on the rational numerators is not dead code: the
// original accumulator started at 0.0, which turns a -0.0 first term into
// +0.0; dropping it could flip the sign of an all-zero numerator.
//
// Every parameter is received by value (hoisted out of the parameter
// vector by the caller), so the point loops below carry no per-point
// std::vector indirection and vectorize.

inline double rat22_point(double n, double a0, double a1, double a2,
                          double b1, double b2) {
  const double n2 = n * n;
  const double num = 0.0 + a0 + a1 * n + a2 * n2;
  const double den = 1.0 + b1 * n + b2 * n2;
  return num / den;
}

inline double rat23_point(double n, double a0, double a1, double a2,
                          double b1, double b2, double b3) {
  const double n2 = n * n;
  const double n3 = n2 * n;
  const double num = 0.0 + a0 + a1 * n + a2 * n2;
  const double den = 1.0 + b1 * n + b2 * n2 + b3 * n3;
  return num / den;
}

inline double rat33_point(double n, double a0, double a1, double a2,
                          double a3, double b1, double b2, double b3) {
  const double n2 = n * n;
  const double n3 = n2 * n;
  const double num = 0.0 + a0 + a1 * n + a2 * n2 + a3 * n3;
  const double den = 1.0 + b1 * n + b2 * n2 + b3 * n3;
  return num / den;
}

inline double cubicln_point(double l, double a, double b, double c,
                            double d) {
  return a + b * l + c * l * l + d * l * l * l;
}

inline double exprat_point(double n, double a, double b, double d) {
  return std::exp((a + b * n) / (1.0 + d * n));
}

inline double poly25_point(double n, double sq, double a, double b, double c,
                           double d) {
  return a + b * n + c * n * n + d * n * n * sq;
}

// SoA panel loops: one function per kernel, parameters hoisted per set,
// inner loop over contiguous points. `n_params` strides the panel. Each
// set s covers its own point count (ms[s], or the uniform m when ms is
// null — the lockstep LM batches problems of different prefix lengths)
// and writes out + s * stride.

void rat22_panel(const double* ns, const std::size_t* ms, std::size_t m,
                 std::size_t stride, const double* panel, std::size_t n_sets,
                 double* out) {
  for (std::size_t s = 0; s < n_sets; ++s) {
    const double* p = panel + s * 5;
    const double a0 = p[0], a1 = p[1], a2 = p[2], b1 = p[3], b2 = p[4];
    const std::size_t mi = ms != nullptr ? ms[s] : m;
    double* row = out + s * stride;
    for (std::size_t i = 0; i < mi; ++i) {
      row[i] = rat22_point(ns[i], a0, a1, a2, b1, b2);
    }
  }
}

void rat23_panel(const double* ns, const std::size_t* ms, std::size_t m,
                 std::size_t stride, const double* panel, std::size_t n_sets,
                 double* out) {
  for (std::size_t s = 0; s < n_sets; ++s) {
    const double* p = panel + s * 6;
    const double a0 = p[0], a1 = p[1], a2 = p[2];
    const double b1 = p[3], b2 = p[4], b3 = p[5];
    const std::size_t mi = ms != nullptr ? ms[s] : m;
    double* row = out + s * stride;
    for (std::size_t i = 0; i < mi; ++i) {
      row[i] = rat23_point(ns[i], a0, a1, a2, b1, b2, b3);
    }
  }
}

void rat33_panel(const double* ns, const std::size_t* ms, std::size_t m,
                 std::size_t stride, const double* panel, std::size_t n_sets,
                 double* out) {
  for (std::size_t s = 0; s < n_sets; ++s) {
    const double* p = panel + s * 7;
    const double a0 = p[0], a1 = p[1], a2 = p[2], a3 = p[3];
    const double b1 = p[4], b2 = p[5], b3 = p[6];
    const std::size_t mi = ms != nullptr ? ms[s] : m;
    double* row = out + s * stride;
    for (std::size_t i = 0; i < mi; ++i) {
      row[i] = rat33_point(ns[i], a0, a1, a2, a3, b1, b2, b3);
    }
  }
}

void cubicln_panel(const double* ls, const std::size_t* ms, std::size_t m,
                   std::size_t stride, const double* panel, std::size_t n_sets,
                   double* out) {
  for (std::size_t s = 0; s < n_sets; ++s) {
    const double* p = panel + s * 4;
    const double a = p[0], b = p[1], c = p[2], d = p[3];
    const std::size_t mi = ms != nullptr ? ms[s] : m;
    double* row = out + s * stride;
    for (std::size_t i = 0; i < mi; ++i) {
      row[i] = cubicln_point(ls[i], a, b, c, d);
    }
  }
}

void exprat_panel(const double* ns, const std::size_t* ms, std::size_t m,
                  std::size_t stride, const double* panel, std::size_t n_sets,
                  double* out) {
  for (std::size_t s = 0; s < n_sets; ++s) {
    const double* p = panel + s * 3;
    const double a = p[0], b = p[1], d = p[2];
    const std::size_t mi = ms != nullptr ? ms[s] : m;
    double* row = out + s * stride;
    for (std::size_t i = 0; i < mi; ++i) {
      row[i] = exprat_point(ns[i], a, b, d);
    }
  }
}

void poly25_panel(const double* ns, const double* sqs, const std::size_t* ms,
                  std::size_t m, std::size_t stride, const double* panel,
                  std::size_t n_sets, double* out) {
  for (std::size_t s = 0; s < n_sets; ++s) {
    const double* p = panel + s * 4;
    const double a = p[0], b = p[1], c = p[2], d = p[3];
    const std::size_t mi = ms != nullptr ? ms[s] : m;
    double* row = out + s * stride;
    for (std::size_t i = 0; i < mi; ++i) {
      row[i] = poly25_point(ns[i], sqs[i], a, b, c, d);
    }
  }
}

}  // namespace

void EvalTables::assign(const double* xs, std::size_t count) {
  n.assign(xs, xs + count);
  ln_n.resize(count);
  sqrt_n.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    ln_n[i] = std::log(xs[i]);
    sqrt_n[i] = std::sqrt(xs[i]);
  }
}

std::string kernel_name(KernelType type) {
  switch (type) {
    case KernelType::kRat22: return "Rat22";
    case KernelType::kRat23: return "Rat23";
    case KernelType::kRat33: return "Rat33";
    case KernelType::kCubicLn: return "CubicLn";
    case KernelType::kExpRat: return "ExpRat";
    case KernelType::kPoly25: return "Poly25";
  }
  return "unknown";
}

std::optional<KernelType> kernel_from_name(const std::string& name) {
  for (KernelType t : kAllKernels) {
    if (kernel_name(t) == name) return t;
  }
  return std::nullopt;
}

std::size_t kernel_param_count(KernelType type) {
  switch (type) {
    case KernelType::kRat22: return 5;   // a0 a1 a2 b1 b2
    case KernelType::kRat23: return 6;   // a0 a1 a2 b1 b2 b3
    case KernelType::kRat33: return 7;   // a0 a1 a2 a3 b1 b2 b3
    case KernelType::kCubicLn: return 4;
    case KernelType::kExpRat: return 3;  // a b d with c == 1
    case KernelType::kPoly25: return 4;
  }
  return 0;
}

bool kernel_is_linear(KernelType type) {
  return type == KernelType::kCubicLn || type == KernelType::kPoly25;
}

double kernel_eval(KernelType type, double n, const std::vector<double>& p) {
  switch (type) {
    case KernelType::kRat22:
      return rat22_point(n, p[0], p[1], p[2], p[3], p[4]);
    case KernelType::kRat23:
      return rat23_point(n, p[0], p[1], p[2], p[3], p[4], p[5]);
    case KernelType::kRat33:
      return rat33_point(n, p[0], p[1], p[2], p[3], p[4], p[5], p[6]);
    case KernelType::kCubicLn:
      return cubicln_point(std::log(n), p[0], p[1], p[2], p[3]);
    case KernelType::kExpRat:
      return exprat_point(n, p[0], p[1], p[2]);
    case KernelType::kPoly25:
      return poly25_point(n, std::sqrt(n), p[0], p[1], p[2], p[3]);
  }
  return std::nan("");
}

void kernel_eval_batch(KernelType type, const std::vector<double>& xs,
                       const std::vector<double>& p,
                       std::vector<double>& out) {
  out.resize(xs.size());
  const std::size_t m = xs.size();
  const double* ns = xs.data();
  double* o = out.data();
  switch (type) {
    case KernelType::kRat22: {
      const double a0 = p[0], a1 = p[1], a2 = p[2], b1 = p[3], b2 = p[4];
      for (std::size_t i = 0; i < m; ++i) {
        o[i] = rat22_point(ns[i], a0, a1, a2, b1, b2);
      }
      return;
    }
    case KernelType::kRat23: {
      const double a0 = p[0], a1 = p[1], a2 = p[2];
      const double b1 = p[3], b2 = p[4], b3 = p[5];
      for (std::size_t i = 0; i < m; ++i) {
        o[i] = rat23_point(ns[i], a0, a1, a2, b1, b2, b3);
      }
      return;
    }
    case KernelType::kRat33: {
      const double a0 = p[0], a1 = p[1], a2 = p[2], a3 = p[3];
      const double b1 = p[4], b2 = p[5], b3 = p[6];
      for (std::size_t i = 0; i < m; ++i) {
        o[i] = rat33_point(ns[i], a0, a1, a2, a3, b1, b2, b3);
      }
      return;
    }
    case KernelType::kCubicLn: {
      const double a = p[0], b = p[1], c = p[2], d = p[3];
      for (std::size_t i = 0; i < m; ++i) {
        o[i] = cubicln_point(std::log(ns[i]), a, b, c, d);
      }
      return;
    }
    case KernelType::kExpRat: {
      const double a = p[0], b = p[1], d = p[2];
      for (std::size_t i = 0; i < m; ++i) {
        o[i] = exprat_point(ns[i], a, b, d);
      }
      return;
    }
    case KernelType::kPoly25: {
      const double a = p[0], b = p[1], c = p[2], d = p[3];
      for (std::size_t i = 0; i < m; ++i) {
        o[i] = poly25_point(ns[i], std::sqrt(ns[i]), a, b, c, d);
      }
      return;
    }
  }
  for (double& v : out) v = std::nan("");
}

void kernel_eval_panel_v(KernelType type, const EvalTables& t,
                         const std::size_t* ms, std::size_t m,
                         std::size_t out_stride, const double* panel,
                         std::size_t n_sets, double* out) {
  const double* ns = t.n.data();
  switch (type) {
    case KernelType::kRat22:
      rat22_panel(ns, ms, m, out_stride, panel, n_sets, out);
      return;
    case KernelType::kRat23:
      rat23_panel(ns, ms, m, out_stride, panel, n_sets, out);
      return;
    case KernelType::kRat33:
      rat33_panel(ns, ms, m, out_stride, panel, n_sets, out);
      return;
    case KernelType::kCubicLn:
      cubicln_panel(t.ln_n.data(), ms, m, out_stride, panel, n_sets, out);
      return;
    case KernelType::kExpRat:
      exprat_panel(ns, ms, m, out_stride, panel, n_sets, out);
      return;
    case KernelType::kPoly25:
      poly25_panel(ns, t.sqrt_n.data(), ms, m, out_stride, panel, n_sets, out);
      return;
  }
  for (std::size_t s = 0; s < n_sets; ++s) {
    const std::size_t mi = ms != nullptr ? ms[s] : m;
    for (std::size_t i = 0; i < mi; ++i) out[s * out_stride + i] = std::nan("");
  }
}

void kernel_eval_panel(KernelType type, const EvalTables& t, std::size_t m,
                       const double* panel, std::size_t n_sets, double* out) {
  kernel_eval_panel_v(type, t, nullptr, m, m, panel, n_sets, out);
}

double kernel_denominator(KernelType type, double n,
                          const std::vector<double>& p) {
  switch (type) {
    case KernelType::kRat22:
      return 1.0 + p[3] * n + p[4] * (n * n);
    case KernelType::kRat23: {
      const double n2 = n * n;
      return 1.0 + p[3] * n + p[4] * n2 + p[5] * (n2 * n);
    }
    case KernelType::kRat33: {
      const double n2 = n * n;
      return 1.0 + p[4] * n + p[5] * n2 + p[6] * (n2 * n);
    }
    case KernelType::kExpRat:
      return 1.0 + p[2] * n;
    case KernelType::kCubicLn:
    case KernelType::kPoly25:
      return 1.0;
  }
  return 1.0;
}

void kernel_denominator_batch(KernelType type, const EvalTables& t,
                              std::size_t m, const std::vector<double>& p,
                              double* out) {
  const double* ns = t.n.data();
  switch (type) {
    case KernelType::kRat22: {
      const double b1 = p[3], b2 = p[4];
      for (std::size_t i = 0; i < m; ++i) {
        const double n = ns[i];
        out[i] = 1.0 + b1 * n + b2 * (n * n);
      }
      return;
    }
    case KernelType::kRat23: {
      const double b1 = p[3], b2 = p[4], b3 = p[5];
      for (std::size_t i = 0; i < m; ++i) {
        const double n = ns[i];
        const double n2 = n * n;
        out[i] = 1.0 + b1 * n + b2 * n2 + b3 * (n2 * n);
      }
      return;
    }
    case KernelType::kRat33: {
      const double b1 = p[4], b2 = p[5], b3 = p[6];
      for (std::size_t i = 0; i < m; ++i) {
        const double n = ns[i];
        const double n2 = n * n;
        out[i] = 1.0 + b1 * n + b2 * n2 + b3 * (n2 * n);
      }
      return;
    }
    case KernelType::kExpRat: {
      const double d = p[2];
      for (std::size_t i = 0; i < m; ++i) out[i] = 1.0 + d * ns[i];
      return;
    }
    case KernelType::kCubicLn:
    case KernelType::kPoly25:
      for (std::size_t i = 0; i < m; ++i) out[i] = 1.0;
      return;
  }
  for (std::size_t i = 0; i < m; ++i) out[i] = 1.0;
}

void kernel_denominator_panel(KernelType type, const EvalTables& t,
                              std::size_t m, const double* panel,
                              std::size_t n_sets, double* out) {
  const double* ns = t.n.data();
  switch (type) {
    case KernelType::kRat22: {
      for (std::size_t s = 0; s < n_sets; ++s) {
        const double* p = panel + s * 5;
        const double b1 = p[3], b2 = p[4];
        double* row = out + s * m;
        for (std::size_t i = 0; i < m; ++i) {
          const double n = ns[i];
          row[i] = 1.0 + b1 * n + b2 * (n * n);
        }
      }
      return;
    }
    case KernelType::kRat23: {
      for (std::size_t s = 0; s < n_sets; ++s) {
        const double* p = panel + s * 6;
        const double b1 = p[3], b2 = p[4], b3 = p[5];
        double* row = out + s * m;
        for (std::size_t i = 0; i < m; ++i) {
          const double n = ns[i];
          const double n2 = n * n;
          row[i] = 1.0 + b1 * n + b2 * n2 + b3 * (n2 * n);
        }
      }
      return;
    }
    case KernelType::kRat33: {
      for (std::size_t s = 0; s < n_sets; ++s) {
        const double* p = panel + s * 7;
        const double b1 = p[4], b2 = p[5], b3 = p[6];
        double* row = out + s * m;
        for (std::size_t i = 0; i < m; ++i) {
          const double n = ns[i];
          const double n2 = n * n;
          row[i] = 1.0 + b1 * n + b2 * n2 + b3 * (n2 * n);
        }
      }
      return;
    }
    case KernelType::kExpRat: {
      for (std::size_t s = 0; s < n_sets; ++s) {
        const double d = panel[s * 3 + 2];
        double* row = out + s * m;
        for (std::size_t i = 0; i < m; ++i) row[i] = 1.0 + d * ns[i];
      }
      return;
    }
    case KernelType::kCubicLn:
    case KernelType::kPoly25:
      for (std::size_t i = 0; i < n_sets * m; ++i) out[i] = 1.0;
      return;
  }
  for (std::size_t i = 0; i < n_sets * m; ++i) out[i] = 1.0;
}

std::vector<double> kernel_basis(KernelType type, double n) {
  switch (type) {
    case KernelType::kCubicLn: {
      const double l = std::log(n);
      return {1.0, l, l * l, l * l * l};
    }
    case KernelType::kPoly25:
      return {1.0, n, n * n, n * n * std::sqrt(n)};
    default:
      throw std::logic_error("kernel_basis: kernel is not linear in params");
  }
}

std::vector<double> kernel_linearized_row(KernelType type, double n,
                                          double y) {
  // For v = N(n)/D(n) with D(n) = 1 + sum b_k n^k, multiply through:
  //   N(n) - v * sum b_k n^k = v
  // which is linear in (a..., b...).
  switch (type) {
    case KernelType::kRat22:
      return {1.0, n, n * n, -y * n, -y * n * n};
    case KernelType::kRat23:
      return {1.0, n, n * n, -y * n, -y * n * n, -y * n * n * n};
    case KernelType::kRat33:
      return {1.0, n,     n * n, n * n * n,
              -y * n, -y * n * n, -y * n * n * n};
    case KernelType::kExpRat: {
      // ln v = (a + b n)/(1 + d n)  =>  a + b n - ln(v) d n = ln v.
      const double lv = std::log(y);
      return {1.0, n, -lv * n};
    }
    default:
      throw std::logic_error(
          "kernel_linearized_row: kernel is linear; use kernel_basis");
  }
}

double kernel_linearized_rhs(KernelType type, double n, double y) {
  (void)n;
  if (type == KernelType::kExpRat) return std::log(y);
  return y;
}

std::vector<double> FittedFunction::eval_many(
    const std::vector<double>& ns) const {
  std::vector<double> out;
  out.reserve(ns.size());
  for (double n : ns) out.push_back((*this)(n));
  return out;
}

std::vector<double> FittedFunction::eval_many(const std::vector<int>& ns) const {
  std::vector<double> out;
  out.reserve(ns.size());
  for (int n : ns) out.push_back((*this)(static_cast<double>(n)));
  return out;
}

}  // namespace estima::core
