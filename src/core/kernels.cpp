#include "core/kernels.hpp"

#include <cmath>
#include <stdexcept>

namespace estima::core {
namespace {

double rat_eval(const std::vector<double>& p, double n, std::size_t num_deg,
                std::size_t den_deg) {
  // Numerator: p[0..num_deg], denominator: 1 + p[num_deg+1..] * n^k.
  double num = 0.0;
  double pow_n = 1.0;
  for (std::size_t k = 0; k <= num_deg; ++k) {
    num += p[k] * pow_n;
    pow_n *= n;
  }
  double den = 1.0;
  pow_n = n;
  for (std::size_t k = 1; k <= den_deg; ++k) {
    den += p[num_deg + k] * pow_n;
    pow_n *= n;
  }
  return num / den;
}

double rat_denominator(const std::vector<double>& p, double n,
                       std::size_t num_deg, std::size_t den_deg) {
  double den = 1.0;
  double pow_n = n;
  for (std::size_t k = 1; k <= den_deg; ++k) {
    den += p[num_deg + k] * pow_n;
    pow_n *= n;
  }
  return den;
}

}  // namespace

std::string kernel_name(KernelType type) {
  switch (type) {
    case KernelType::kRat22: return "Rat22";
    case KernelType::kRat23: return "Rat23";
    case KernelType::kRat33: return "Rat33";
    case KernelType::kCubicLn: return "CubicLn";
    case KernelType::kExpRat: return "ExpRat";
    case KernelType::kPoly25: return "Poly25";
  }
  return "unknown";
}

std::optional<KernelType> kernel_from_name(const std::string& name) {
  for (KernelType t : kAllKernels) {
    if (kernel_name(t) == name) return t;
  }
  return std::nullopt;
}

std::size_t kernel_param_count(KernelType type) {
  switch (type) {
    case KernelType::kRat22: return 5;   // a0 a1 a2 b1 b2
    case KernelType::kRat23: return 6;   // a0 a1 a2 b1 b2 b3
    case KernelType::kRat33: return 7;   // a0 a1 a2 a3 b1 b2 b3
    case KernelType::kCubicLn: return 4;
    case KernelType::kExpRat: return 3;  // a b d with c == 1
    case KernelType::kPoly25: return 4;
  }
  return 0;
}

bool kernel_is_linear(KernelType type) {
  return type == KernelType::kCubicLn || type == KernelType::kPoly25;
}

double kernel_eval(KernelType type, double n, const std::vector<double>& p) {
  switch (type) {
    case KernelType::kRat22: return rat_eval(p, n, 2, 2);
    case KernelType::kRat23: return rat_eval(p, n, 2, 3);
    case KernelType::kRat33: return rat_eval(p, n, 3, 3);
    case KernelType::kCubicLn: {
      const double l = std::log(n);
      return p[0] + p[1] * l + p[2] * l * l + p[3] * l * l * l;
    }
    case KernelType::kExpRat: {
      // exp((a + b n) / (1 + d n)); parameters (a, b, d).
      return std::exp((p[0] + p[1] * n) / (1.0 + p[2] * n));
    }
    case KernelType::kPoly25: {
      return p[0] + p[1] * n + p[2] * n * n + p[3] * n * n * std::sqrt(n);
    }
  }
  return std::nan("");
}

void kernel_eval_batch(KernelType type, const std::vector<double>& xs,
                       const std::vector<double>& p,
                       std::vector<double>& out) {
  out.resize(xs.size());
  switch (type) {
    case KernelType::kRat22:
      for (std::size_t i = 0; i < xs.size(); ++i) {
        out[i] = rat_eval(p, xs[i], 2, 2);
      }
      return;
    case KernelType::kRat23:
      for (std::size_t i = 0; i < xs.size(); ++i) {
        out[i] = rat_eval(p, xs[i], 2, 3);
      }
      return;
    case KernelType::kRat33:
      for (std::size_t i = 0; i < xs.size(); ++i) {
        out[i] = rat_eval(p, xs[i], 3, 3);
      }
      return;
    case KernelType::kCubicLn:
      for (std::size_t i = 0; i < xs.size(); ++i) {
        const double l = std::log(xs[i]);
        out[i] = p[0] + p[1] * l + p[2] * l * l + p[3] * l * l * l;
      }
      return;
    case KernelType::kExpRat:
      for (std::size_t i = 0; i < xs.size(); ++i) {
        const double n = xs[i];
        out[i] = std::exp((p[0] + p[1] * n) / (1.0 + p[2] * n));
      }
      return;
    case KernelType::kPoly25:
      for (std::size_t i = 0; i < xs.size(); ++i) {
        const double n = xs[i];
        out[i] = p[0] + p[1] * n + p[2] * n * n + p[3] * n * n * std::sqrt(n);
      }
      return;
  }
  for (double& v : out) v = std::nan("");
}

double kernel_denominator(KernelType type, double n,
                          const std::vector<double>& p) {
  switch (type) {
    case KernelType::kRat22: return rat_denominator(p, n, 2, 2);
    case KernelType::kRat23: return rat_denominator(p, n, 2, 3);
    case KernelType::kRat33: return rat_denominator(p, n, 3, 3);
    case KernelType::kExpRat: return 1.0 + p[2] * n;
    case KernelType::kCubicLn:
    case KernelType::kPoly25:
      return 1.0;
  }
  return 1.0;
}

std::vector<double> kernel_basis(KernelType type, double n) {
  switch (type) {
    case KernelType::kCubicLn: {
      const double l = std::log(n);
      return {1.0, l, l * l, l * l * l};
    }
    case KernelType::kPoly25:
      return {1.0, n, n * n, n * n * std::sqrt(n)};
    default:
      throw std::logic_error("kernel_basis: kernel is not linear in params");
  }
}

std::vector<double> kernel_linearized_row(KernelType type, double n,
                                          double y) {
  // For v = N(n)/D(n) with D(n) = 1 + sum b_k n^k, multiply through:
  //   N(n) - v * sum b_k n^k = v
  // which is linear in (a..., b...).
  switch (type) {
    case KernelType::kRat22:
      return {1.0, n, n * n, -y * n, -y * n * n};
    case KernelType::kRat23:
      return {1.0, n, n * n, -y * n, -y * n * n, -y * n * n * n};
    case KernelType::kRat33:
      return {1.0, n,     n * n, n * n * n,
              -y * n, -y * n * n, -y * n * n * n};
    case KernelType::kExpRat: {
      // ln v = (a + b n)/(1 + d n)  =>  a + b n - ln(v) d n = ln v.
      const double lv = std::log(y);
      return {1.0, n, -lv * n};
    }
    default:
      throw std::logic_error(
          "kernel_linearized_row: kernel is linear; use kernel_basis");
  }
}

double kernel_linearized_rhs(KernelType type, double n, double y) {
  (void)n;
  if (type == KernelType::kExpRat) return std::log(y);
  return y;
}

std::vector<double> FittedFunction::eval_many(
    const std::vector<double>& ns) const {
  std::vector<double> out;
  out.reserve(ns.size());
  for (double n : ns) out.push_back((*this)(n));
  return out;
}

std::vector<double> FittedFunction::eval_many(const std::vector<int>& ns) const {
  std::vector<double> out;
  out.reserve(ns.size());
  for (int n : ns) out.push_back((*this)(static_cast<double>(n)));
  return out;
}

}  // namespace estima::core
