#include "core/measurement.hpp"

#include <fstream>

#include "core/text_parse.hpp"
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace estima::core {
namespace {

bool domain_selected(StallDomain d, bool include_frontend,
                     bool include_software) {
  switch (d) {
    case StallDomain::kHardwareBackend: return true;
    case StallDomain::kHardwareFrontend: return include_frontend;
    case StallDomain::kSoftware: return include_software;
  }
  return false;
}

// Whole-cell numeric parsing for data rows (semantics shared with every
// other text format via core/text_parse.hpp): trailing garbage ("1x")
// must not parse as 1, silently corrupting a campaign.
double parse_double_cell(const std::string& cell, std::size_t line_no) {
  const auto v = textparse::parse_f64(cell);
  if (v) return *v;
  throw std::invalid_argument("measurement csv: line " +
                              std::to_string(line_no) +
                              ": malformed numeric cell '" + cell + "'");
}

int parse_int_cell(const std::string& cell, std::size_t line_no) {
  const auto v = textparse::parse_i32(cell);
  if (v) return *v;
  throw std::invalid_argument("measurement csv: line " +
                              std::to_string(line_no) +
                              ": malformed core-count cell '" + cell + "'");
}

}  // namespace

std::string stall_domain_name(StallDomain d) {
  switch (d) {
    case StallDomain::kHardwareBackend: return "hardware-backend";
    case StallDomain::kHardwareFrontend: return "hardware-frontend";
    case StallDomain::kSoftware: return "software";
  }
  return "?";
}

std::string stall_domain_prefix(StallDomain d) {
  switch (d) {
    case StallDomain::kHardwareBackend: return "hw";
    case StallDomain::kHardwareFrontend: return "fe";
    case StallDomain::kSoftware: return "sw";
  }
  return "hw";
}

StallDomain stall_domain_from_prefix(const std::string& p) {
  if (p == "hw") return StallDomain::kHardwareBackend;
  if (p == "fe") return StallDomain::kHardwareFrontend;
  if (p == "sw") return StallDomain::kSoftware;
  throw std::invalid_argument("unknown stall domain prefix: " + p);
}

double MeasurementSet::total_stalls_at(std::size_t i, bool include_frontend,
                                       bool include_software) const {
  double acc = 0.0;
  for (const auto& cat : categories) {
    if (!domain_selected(cat.domain, include_frontend, include_software))
      continue;
    acc += cat.values.at(i);
  }
  return acc;
}

std::vector<double> MeasurementSet::stalls_per_core(
    bool include_frontend, bool include_software) const {
  std::vector<double> out(cores.size(), 0.0);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    out[i] = total_stalls_at(i, include_frontend, include_software) /
             static_cast<double>(cores[i]);
  }
  return out;
}

MeasurementSet MeasurementSet::truncated(std::size_t k) const {
  if (k > num_points()) {
    throw std::invalid_argument("truncated: k exceeds measurement points");
  }
  MeasurementSet out = *this;
  out.cores.resize(k);
  out.time_s.resize(k);
  for (auto& cat : out.categories) cat.values.resize(k);
  return out;
}

MeasurementSet MeasurementSet::filtered(bool include_frontend,
                                        bool include_software) const {
  MeasurementSet out = *this;
  out.categories.clear();
  for (const auto& cat : categories) {
    if (domain_selected(cat.domain, include_frontend, include_software)) {
      out.categories.push_back(cat);
    }
  }
  return out;
}

void MeasurementSet::validate() const {
  if (cores.size() != time_s.size()) {
    throw std::invalid_argument("MeasurementSet: cores/time size mismatch");
  }
  for (std::size_t i = 1; i < cores.size(); ++i) {
    if (cores[i] <= cores[i - 1]) {
      throw std::invalid_argument("MeasurementSet: cores must be ascending");
    }
  }
  for (const auto& cat : categories) {
    if (cat.values.size() != cores.size()) {
      throw std::invalid_argument("MeasurementSet: category '" + cat.name +
                                  "' size mismatch");
    }
  }
}

void write_csv(std::ostream& os, const MeasurementSet& ms) {
  // Full round-trip precision: predictions must be identical when a
  // campaign is saved and reloaded.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# workload=" << ms.workload << " machine=" << ms.machine
     << " freq_ghz=" << ms.freq_ghz << " dataset_bytes=" << ms.dataset_bytes
     << "\n";
  os << "cores,time_s";
  for (const auto& cat : ms.categories) {
    os << ',' << stall_domain_prefix(cat.domain) << ':' << cat.name;
  }
  os << "\n";
  for (std::size_t i = 0; i < ms.cores.size(); ++i) {
    os << ms.cores[i] << ',' << ms.time_s[i];
    for (const auto& cat : ms.categories) os << ',' << cat.values[i];
    os << "\n";
  }
}

MeasurementSet read_csv(std::istream& is) {
  MeasurementSet ms;
  std::string line;
  // CRLF files must parse identically to LF files on every line: a '\r'
  // surviving into the last column header would silently rename the last
  // category (changing its campaign hash), not just break data rows.
  const auto strip_cr = [](std::string& l) { textparse::strip_cr(l); };

  // Header comment with metadata.
  if (!std::getline(is, line)) {
    throw std::invalid_argument("measurement csv: missing metadata line");
  }
  strip_cr(line);
  if (line.empty() || line[0] != '#') {
    throw std::invalid_argument("measurement csv: missing metadata line");
  }
  {
    std::istringstream meta(line.substr(1));
    std::string tok;
    while (meta >> tok) {
      const auto eq = tok.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "workload") ms.workload = val;
      else if (key == "machine") ms.machine = val;
      else if (key == "freq_ghz") ms.freq_ghz = std::stod(val);
      else if (key == "dataset_bytes") ms.dataset_bytes = std::stod(val);
    }
  }

  // Column header.
  if (!std::getline(is, line)) {
    throw std::invalid_argument("measurement csv: missing column header");
  }
  strip_cr(line);
  {
    std::istringstream hdr(line);
    std::string col;
    int idx = 0;
    while (std::getline(hdr, col, ',')) {
      if (idx == 0 && col != "cores") {
        throw std::invalid_argument("measurement csv: first column != cores");
      }
      if (idx == 1 && col != "time_s") {
        throw std::invalid_argument("measurement csv: second column != time_s");
      }
      if (idx >= 2) {
        const auto colon = col.find(':');
        if (colon == std::string::npos) {
          throw std::invalid_argument("measurement csv: category '" + col +
                                      "' lacks domain prefix");
        }
        StallSeries s;
        s.domain = stall_domain_from_prefix(col.substr(0, colon));
        s.name = col.substr(colon + 1);
        ms.categories.push_back(std::move(s));
      }
      ++idx;
    }
  }

  // Data rows. Every row must carry exactly cores, time_s and one cell per
  // declared category: a short or long row would otherwise leave the set
  // misaligned, surfacing (if at all) only as a confusing size-mismatch far
  // from the offending line.
  std::size_t line_no = 2;  // metadata + column header already consumed
  while (std::getline(is, line)) {
    ++line_no;
    strip_cr(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(row, cell, ',')) cells.push_back(std::move(cell));
    // getline drops the empty field after a trailing separator; surface it
    // so "1,2.0,3.0," is rejected like any other misaligned row.
    if (line.back() == ',') cells.emplace_back();
    const std::size_t want = 2 + ms.categories.size();
    if (cells.size() != want) {
      throw std::invalid_argument(
          "measurement csv: line " + std::to_string(line_no) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(want) + " (cores,time_s + one per category)");
    }
    ms.cores.push_back(parse_int_cell(cells[0], line_no));
    ms.time_s.push_back(parse_double_cell(cells[1], line_no));
    for (std::size_t c = 0; c < ms.categories.size(); ++c) {
      ms.categories[c].values.push_back(
          parse_double_cell(cells[2 + c], line_no));
    }
  }
  ms.validate();
  return ms;
}

void save_csv(const std::string& path, const MeasurementSet& ms) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  write_csv(os, ms);
}

MeasurementSet load_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return read_csv(is);
}

}  // namespace estima::core
