// The full ESTIMA prediction pipeline (Figure 3):
//   (A) collect  — a MeasurementSet from counters/simulator/CSV;
//   (B) extrapolate — every stall category independently (extrapolator);
//   (C) translate — stalls-per-core -> execution time via the scaling
//       factor, whose fit is chosen by *correlation* of the induced time
//       prediction with stalls-per-core (Section 3.1.3).
//
// Also implements the paper's baselines and modes:
//   * time extrapolation (Section 2.4 / Figure 1);
//   * aggregate-stall mode (Section 2.5 ablation);
//   * weak scaling via dataset_scale (Section 4.5);
//   * cross-machine frequency scaling (Section 4.3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/extrapolator.hpp"
#include "core/measurement.hpp"

namespace estima::core {

struct PredictionAudit;

struct PredictionConfig {
  std::vector<int> target_cores;    ///< core counts to predict for
  double target_freq_ghz = 0.0;     ///< 0 => same frequency as measurement
  double dataset_scale = 1.0;       ///< weak scaling factor (Section 4.5)
  bool use_software_stalls = true;  ///< include StallDomain::kSoftware
  bool include_frontend = false;    ///< Table 6 ablation
  bool aggregate_mode = false;      ///< Section 2.5 ablation: one merged series
  ExtrapolationConfig extrap;
};

/// Per-category extrapolation detail exposed for diagnostics and benches.
struct CategoryPrediction {
  std::string name;
  StallDomain domain = StallDomain::kHardwareBackend;
  SeriesExtrapolation extrapolation;
  std::vector<double> values;  ///< extrapolated totals at target_cores
};

struct Prediction {
  std::vector<int> cores;
  std::vector<double> time_s;           ///< predicted execution time
  std::vector<double> stalls_per_core;  ///< Σ categories / n at target cores
  std::vector<CategoryPrediction> categories;
  FittedFunction factor_fn;          ///< fitted scaling-factor function
  double factor_correlation = 0.0;   ///< corr(time prediction, spc)
  double freq_scale = 1.0;           ///< applied measured-time multiplier
  /// Work accounting of the scaling-factor enumeration. The strict and
  /// relaxed realism passes share one fit execution (realism_variants = 2,
  /// variant_refits_avoided = the refits the old retry would have run).
  EnumerationStats factor_stats;
  /// True when the strict factor realism pass produced no candidate and
  /// the relaxed pass was used instead.
  bool factor_used_relaxed_realism = false;

  /// Core count with the best (lowest) predicted time.
  int best_core_count() const;
};

/// Runs the ESTIMA pipeline. Throws std::invalid_argument on malformed
/// input (too few points, missing categories, no realistic fits).
Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg);

/// Same pipeline with the fan-out pool supplied separately, overriding
/// cfg.extrap.pool. Callers holding a shared immutable config (the serving
/// layer) inject their pool per call without copying or mutating the
/// config; output is bit-identical for every pool.
Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg,
                   parallel::ThreadPool* pool);

/// Same pipeline under a cooperative deadline (overriding both
/// cfg.extrap.pool and cfg.extrap.deadline). Fit jobs poll the deadline
/// between fits; once it expires the pipeline stops within one fit and
/// throws DeadlineExceeded. A prediction that returns at all is
/// bit-identical to an undeadlined run — a deadline can only replace an
/// answer with an exception, never alter it. Null deadline = unlimited.
Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg,
                   parallel::ThreadPool* pool, const Deadline* deadline);

/// Same pipeline with a per-request trace attached (overriding
/// cfg.extrap.trace as well): records a `fit.enumerate` wall span over
/// the extrapolation + scaling-factor phases and, inside the fit jobs,
/// nested `fit.levmar` / `fit.realism` spans. Like pool and deadline,
/// the trace pointer cannot change produced values. Null = untraced.
Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg,
                   parallel::ThreadPool* pool, const Deadline* deadline,
                   obs::TraceContext* trace);

/// Same pipeline with a fit-audit sink attached: when `audit` is non-null
/// it receives one FitAudit per stall category (each category's config
/// points at its own sink, so the parallel category fan-out never shares
/// one) plus the scaling-factor enumeration's audit with its winner
/// scorecard. Audits are collected in serial slot order from per-slot
/// data, so like the prediction itself they are bit-identical across
/// {kReference, kBatched} x any pool size. Null = unaudited; the pointer
/// cannot change produced values. cfg.extrap.audit itself is ignored by
/// predict() — a single sink cannot serve parallel categories.
Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg,
                   parallel::ThreadPool* pool, const Deadline* deadline,
                   obs::TraceContext* trace, PredictionAudit* audit);

/// Same pipeline with a cross-prediction fit memo attached (overriding
/// cfg.extrap.memo): fit jobs whose exact input is already memoized replay
/// the stored result, and executed fits are inserted for the next call.
/// The streaming-campaign path threads a per-campaign memo here so an
/// append-then-repredict executes only the fits the new point created.
/// Like pool/deadline/trace/audit, the memo cannot change produced values
/// — a prediction with a memo attached is byte-identical to a cold one.
/// Null = every fit executes.
Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg,
                   parallel::ThreadPool* pool, const Deadline* deadline,
                   obs::TraceContext* trace, PredictionAudit* audit,
                   FitMemo* memo);

/// Stable 64-bit FNV-1a signature over every config field that can change
/// a prediction's numeric result. memoize_fits, the pool pointer, the
/// deadline, the trace pointer, the audit/metrics sinks, and the fit memo
/// are excluded: all are bit-identical-output knobs by construction, so
/// results may be shared across them. The serving layer combines this with
/// a measurement digest into campaign-hash cache keys.
std::uint64_t config_signature(const PredictionConfig& cfg);

/// Baseline: extrapolates execution time directly using the same kernel and
/// checkpoint machinery (Section 2.4).
Prediction predict_time_extrapolation(const MeasurementSet& ms,
                                      const PredictionConfig& cfg);

/// Error metrics of a prediction against ground-truth measurements of the
/// target machine. Only core counts present in both are compared.
struct PredictionError {
  double max_pct = 0.0;   ///< maximum relative error (the paper's Table 4)
  double mean_pct = 0.0;
  int compared_points = 0;
  /// True when the prediction and the truth agree on whether the workload
  /// keeps scaling past the measurement range: both improve, or both stop.
  bool scaling_verdict_match = true;
  int predicted_best_cores = 0;
  int actual_best_cores = 0;
};

PredictionError evaluate_prediction(const Prediction& pred,
                                    const MeasurementSet& truth,
                                    int skip_below_cores = 0);

/// Convenience: target core list {1, 2, ..., max}.
std::vector<int> cores_up_to(int max_cores);

}  // namespace estima::core
