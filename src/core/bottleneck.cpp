#include "core/bottleneck.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace estima::core {

std::string BottleneckReport::to_string() const {
  std::ostringstream os;
  os << "Bottleneck report: measured up to " << measured_cores
     << " cores, predicted at " << target_cores << " cores\n";
  os << std::left << std::setw(44) << "category" << std::setw(10) << "domain"
     << std::right << std::setw(12) << "share@tgt" << std::setw(12)
     << "share@meas" << std::setw(10) << "growth" << "\n";
  for (const auto& e : entries) {
    std::string dom = stall_domain_name(e.domain);
    os << std::left << std::setw(44) << e.category << std::setw(10)
       << (e.domain == StallDomain::kSoftware ? "sw" : "hw") << std::right
       << std::setw(11) << std::fixed << std::setprecision(1)
       << 100.0 * e.share_at_target << "%" << std::setw(11)
       << 100.0 * e.share_at_measured << "%" << std::setw(9)
       << std::setprecision(2) << e.growth_factor << "x\n";
  }
  return os.str();
}

BottleneckReport analyze_bottlenecks(const Prediction& pred,
                                     const MeasurementSet& ms,
                                     int target_cores) {
  auto it = std::find(pred.cores.begin(), pred.cores.end(), target_cores);
  if (it == pred.cores.end()) {
    throw std::invalid_argument(
        "analyze_bottlenecks: target core count not in prediction");
  }
  const std::size_t ti =
      static_cast<std::size_t>(std::distance(pred.cores.begin(), it));

  BottleneckReport report;
  report.target_cores = target_cores;
  report.measured_cores = ms.cores.empty() ? 0 : ms.cores.back();

  double total_target = 0.0;
  for (const auto& cp : pred.categories) total_target += cp.values[ti];

  // Measured totals at the last measured point, matched by category name.
  double total_meas = 0.0;
  for (const auto& cat : ms.categories) {
    if (!cat.values.empty()) total_meas += cat.values.back();
  }

  for (const auto& cp : pred.categories) {
    BottleneckEntry e;
    e.category = cp.name;
    e.domain = cp.domain;
    e.share_at_target =
        total_target > 0.0 ? cp.values[ti] / total_target : 0.0;

    double meas_value = 0.0;
    for (const auto& cat : ms.categories) {
      if (cat.name == cp.name && !cat.values.empty()) {
        meas_value = cat.values.back();
        break;
      }
    }
    e.share_at_measured = total_meas > 0.0 ? meas_value / total_meas : 0.0;
    e.growth_factor = meas_value > 0.0 ? cp.values[ti] / meas_value
                                       : std::numeric_limits<double>::infinity();
    report.entries.push_back(std::move(e));
  }

  std::sort(report.entries.begin(), report.entries.end(),
            [](const BottleneckEntry& a, const BottleneckEntry& b) {
              return a.share_at_target > b.share_at_target;
            });
  return report;
}

}  // namespace estima::core
