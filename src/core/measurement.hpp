// Measurement containers: what ESTIMA collects on the measurements machine
// and what the simulator / samplers emit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace estima::core {

/// Where a stall-cycle category was measured.
enum class StallDomain {
  kHardwareBackend,   ///< Table 2 / Table 3 backend dispatch/allocation stalls
  kHardwareFrontend,  ///< instruction fetch/decode stalls (Table 6 ablation)
  kSoftware,          ///< STM aborted cycles, lock/barrier spin cycles
};

std::string stall_domain_name(StallDomain d);

/// The on-disk domain tag shared by every text format (CSV column headers,
/// prediction records): "hw" / "fe" / "sw". One mapping on purpose — a
/// future StallDomain must serialize identically everywhere.
std::string stall_domain_prefix(StallDomain d);

/// Inverse of stall_domain_prefix; throws std::invalid_argument on an
/// unknown tag.
StallDomain stall_domain_from_prefix(const std::string& p);

/// One stall-cycle category: total cycles summed over all active cores, one
/// value per measured core count.
struct StallSeries {
  std::string name;        ///< e.g. "0D6h Dispatch Stall for RS Full"
  StallDomain domain = StallDomain::kHardwareBackend;
  std::vector<double> values;  ///< aligned with MeasurementSet::cores
};

/// A full measurement campaign on one machine: execution time and stall
/// categories at each measured core count.
struct MeasurementSet {
  std::string workload;
  std::string machine;
  double freq_ghz = 0.0;       ///< clock of the measurements machine
  double dataset_bytes = 0.0;  ///< memory footprint (weak scaling input)
  std::vector<int> cores;      ///< measured core counts, ascending
  std::vector<double> time_s;  ///< execution time per core count
  std::vector<StallSeries> categories;

  std::size_t num_points() const { return cores.size(); }

  /// Sum of the selected domains' stall values at measurement point i.
  double total_stalls_at(std::size_t i, bool include_frontend,
                         bool include_software) const;

  /// Total stalled cycles per core at each measured point (Σ categories / n).
  std::vector<double> stalls_per_core(bool include_frontend,
                                      bool include_software) const;

  /// Keeps only the first k measurement points (truncating a campaign to a
  /// smaller "measurements machine"). k must be <= num_points().
  MeasurementSet truncated(std::size_t k) const;

  /// Returns the measurement restricted to the given stall domains.
  MeasurementSet filtered(bool include_frontend, bool include_software) const;

  /// Basic shape validation; throws std::invalid_argument on inconsistency.
  void validate() const;
};

/// Serialises to the on-disk CSV format:
///   # workload=... machine=... freq_ghz=... dataset_bytes=...
///   cores,time_s,hw:<name>,fe:<name>,sw:<name>,...
void write_csv(std::ostream& os, const MeasurementSet& ms);
MeasurementSet read_csv(std::istream& is);

/// File-based convenience wrappers.
void save_csv(const std::string& path, const MeasurementSet& ms);
MeasurementSet load_csv(const std::string& path);

}  // namespace estima::core
