// Fit provenance: why each (kernel, prefix, start) attempt ended the way
// it did, which candidates survived realism and scoring, and which one
// won. The audit sink rides in ExtrapolationConfig exactly like `trace`
// and `deadline`: an opt-in pointer that cannot change produced values,
// excluded from config_signature. Both fit engines emit records from the
// same per-slot data in the same serial order, so for a given input the
// audit is byte-identical across {kReference, kBatched} x any pool size —
// the golden-corpus bit-identity rule extends to audits.
//
// Per-kernel fit metrics (estima_fit_attempts_total{kernel,outcome},
// estima_fit_seconds{kernel}) piggyback on the same records; wall-clock
// timing deliberately lives only in the metrics, never in the audit,
// because audits are bit-identity-checked and clocks are not.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/kernels.hpp"
#include "numeric/levmar.hpp"

namespace estima::obs {
class Registry;
class Counter;
class Histogram;
}  // namespace estima::obs

namespace estima::core {

/// Final disposition of one fit attempt or candidate. The first block
/// mirrors LevMarTermination (attempt level); the second block is
/// candidate level (how the enumeration scored the fit).
enum class FitOutcome : std::uint8_t {
  kConverged = 0,      ///< LM stopped on a tolerance
  kMaxIter,            ///< LM iteration budget exhausted
  kNoProgress,         ///< LM damping exhausted on rejected steps
  kCholeskyFail,       ///< LM damping exhausted on singular systems
  kNudgeExhausted,     ///< LM never found a finite start
  kNoFit,              ///< no fitted function produced (guard/degenerate)
  kUnrealisticStrict,  ///< rejected by the strict realism filter
  kUnrealisticRelaxed, ///< rejected even by the relaxed realism filter
  kWorseRmse,          ///< realistic but lost the checkpoint-RMSE contest
  kWinner,             ///< the candidate the prediction used
  kCancelled,          ///< enumeration abandoned (deadline/abort)
};
inline constexpr std::size_t kFitOutcomeCount = 11;

const char* fit_outcome_name(FitOutcome o);

/// Attempt-level outcome from an LM termination reason.
FitOutcome fit_outcome_from_term(numeric::LevMarTermination t);

/// One fitting attempt: a single LM start of a nonlinear kernel, or the
/// single direct solve (start == -1) of a linear/trivial/guarded fit.
struct FitAttempt {
  KernelType kernel = KernelType::kCubicLn;
  int prefix_len = 0;
  int start = -1;  ///< LM start index; -1 = direct solve / guard / trivial
  FitOutcome outcome = FitOutcome::kNoFit;
  double rmse = std::numeric_limits<double>::quiet_NaN();  ///< scaled space
  int iterations = 0;
  std::uint64_t model_evals = 0;
};

/// One enumerated (kernel, prefix) candidate and how it was scored.
struct FitCandidate {
  KernelType kernel = KernelType::kCubicLn;
  int prefix_len = 0;
  /// Checkpoint setting that scored this slot under the brute-force
  /// layout; 0 when one memoized slot is scored across every applicable
  /// setting (the default).
  int checkpoints = 0;
  FitOutcome outcome = FitOutcome::kNoFit;
  std::uint64_t realistic_mask = 0;  ///< bit v = passed realism filter v
  /// Best checkpoint RMSE across the checkpoint settings that scored this
  /// candidate; NaN when the candidate never reached scoring.
  double checkpoint_rmse = std::numeric_limits<double>::quiet_NaN();
};

/// The audit of one series enumeration: every attempt, every candidate,
/// and the winner's checkpoint scorecard. Records are appended in the
/// fixed serial slot order (prefix, then kernel), never concurrently.
struct FitAudit {
  std::vector<FitAttempt> attempts;
  std::vector<FitCandidate> candidates;

  bool has_winner = false;
  KernelType winner_kernel = KernelType::kCubicLn;
  int winner_prefix = 0;
  int winner_checkpoints = 0;
  double winner_rmse = std::numeric_limits<double>::quiet_NaN();
  /// The winner's held-out checkpoints: measured core counts, the
  /// winning fit's predictions there, and the measured values.
  std::vector<int> checkpoint_cores;
  std::vector<double> checkpoint_predicted;
  std::vector<double> checkpoint_actual;

  /// Nonzero when the enumeration was abandoned (expired deadline /
  /// allocation failure): no per-slot records were emitted, because a
  /// partial enumeration is never scored. Outside the bit-identity
  /// contract, like the EnumerationStats fields they mirror.
  std::size_t fits_cancelled = 0;
  std::size_t fits_aborted = 0;
};

/// The audit of one full predict(): one FitAudit per stall category plus
/// the scaling-factor enumeration's audit. predict() points each
/// category's config at its own sink, so the parallel category fan-out
/// never shares one.
struct PredictionAudit {
  struct Category {
    std::string name;
    FitAudit audit;
  };
  std::vector<Category> categories;
  FitAudit factor;
  bool factor_used_relaxed = false;
};

/// Registry-backed per-kernel fit metrics, shared by every enumeration of
/// a process (Counter/Histogram recording is lock-free). Outcome counts
/// piggyback on the audit records; fit wall time is recorded by the
/// engines per fit job and is deliberately absent from FitAudit.
struct FitMetrics {
  static constexpr std::size_t kKernels = kAllKernels.size();
  obs::Counter* attempts[kKernels][kFitOutcomeCount] = {};
  obs::Histogram* fit_seconds[kKernels] = {};

  /// Registers (or re-finds) every family in `reg`. Call once at startup.
  void init(obs::Registry& reg);

  void count(KernelType kernel, FitOutcome outcome, std::uint64_t n = 1);
  void record_fit_seconds(KernelType kernel, double seconds);
};

}  // namespace estima::core
