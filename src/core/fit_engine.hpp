// Fitting a single Table-1 kernel to a series of (core count, value) points.
//
// Linear kernels are solved directly by QR (ridge fallback for short
// prefixes); rational/ExpRat kernels get a linearised initial guess that is
// then refined by Levenberg-Marquardt. A realism filter rejects fits with
// poles, sign flips or explosions inside the extrapolation range, mirroring
// the paper's "discarding the function types that produce functions that are
// not realistic for this approximation" (Section 3.1.2).
#pragma once

#include <optional>
#include <vector>

#include "core/kernels.hpp"

namespace estima::core {

struct RealismOptions {
  double range_min = 1.0;       ///< start of the extrapolation range
  double range_max = 64.0;      ///< end of the extrapolation range
  double explosion_factor = 1e4;  ///< reject |f| > factor * max|y|
  bool require_nonnegative = true;  ///< reject negative fits of nonneg data
  double negativity_slack = 0.05;   ///< tolerated dip below zero (rel. to max)
  int max_steps = 4096;  ///< ceiling on realism-walk evaluations per candidate
};

/// Checks a fitted function against the realism rules over [range_min,
/// range_max]: finite everywhere, denominator pole-free, bounded, and
/// non-negative when the data was.
bool is_realistic(const FittedFunction& f, const RealismOptions& opts,
                  double data_max_abs, bool data_nonnegative);

struct FitOptions {
  double ridge_lambda = 1e-8;  ///< regulariser for under-determined prefixes
  int levmar_max_iterations = 120;
};

/// Fits `type` to the points (xs, ys). Returns std::nullopt when the fit is
/// impossible (too few points, degenerate data) or produced non-finite
/// parameters. The returned function is *not* realism-checked; callers
/// apply is_realistic with their extrapolation range.
std::optional<FittedFunction> fit_kernel(KernelType type,
                                         const std::vector<double>& xs,
                                         const std::vector<double>& ys,
                                         const FitOptions& opts = {});

}  // namespace estima::core
