// Fitting a single Table-1 kernel to a series of (core count, value) points.
//
// Linear kernels are solved directly by QR (ridge fallback for short
// prefixes); rational/ExpRat kernels get a linearised initial guess that is
// then refined by Levenberg-Marquardt. A realism filter rejects fits with
// poles, sign flips or explosions inside the extrapolation range, mirroring
// the paper's "discarding the function types that produce functions that are
// not realistic for this approximation" (Section 3.1.2).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/kernels.hpp"
#include "numeric/levmar.hpp"

namespace estima::core {

struct RealismOptions {
  double range_min = 1.0;       ///< start of the extrapolation range
  double range_max = 64.0;      ///< end of the extrapolation range
  double explosion_factor = 1e4;  ///< reject |f| > factor * max|y|
  bool require_nonnegative = true;  ///< reject negative fits of nonneg data
  double negativity_slack = 0.05;   ///< tolerated dip below zero (rel. to max)
  int max_steps = 4096;  ///< ceiling on realism-walk evaluations per candidate
};

/// Checks a fitted function against the realism rules over [range_min,
/// range_max]: finite everywhere, denominator pole-free, bounded, and
/// non-negative when the data was.
bool is_realistic(const FittedFunction& f, const RealismOptions& opts,
                  double data_max_abs, bool data_nonnegative);

struct FitOptions {
  double ridge_lambda = 1e-8;  ///< regulariser for under-determined prefixes
  int levmar_max_iterations = 120;
};

/// Per-fit diagnostic record for the audit layer: what happened to each LM
/// start (or the single direct solve) of one (kernel, prefix) fit. The
/// scalar and batched paths fill it from the same per-problem LM results,
/// so for a given fit the record is bit-identical across engines.
struct FitDiag {
  /// How the fit was produced. kGuard covers rejected inputs (too few
  /// points, non-positive cores, the all-zero ExpRat case); kTrivial the
  /// all-zero shortcut; kLinear the direct QR solve; kNonlinear the LM
  /// refinement (one Start per LM starting point, in start order).
  enum class Path : std::uint8_t { kGuard, kTrivial, kLinear, kNonlinear };
  struct Start {
    double rmse = 0.0;  ///< LM rmse in the scaled-value space
    int iterations = 0;
    std::size_t model_evals = 0;
    numeric::LevMarTermination term = numeric::LevMarTermination::kNone;
  };
  Path path = Path::kGuard;
  bool solved = false;        ///< did this fit produce a FittedFunction
  std::vector<Start> starts;  ///< nonlinear path only
};

/// Fits `type` to the points (xs, ys). Returns std::nullopt when the fit is
/// impossible (too few points, degenerate data) or produced non-finite
/// parameters. The returned function is *not* realism-checked; callers
/// apply is_realistic with their extrapolation range. When `diag` is
/// non-null it is overwritten with the fit's diagnostic record.
std::optional<FittedFunction> fit_kernel(KernelType type,
                                         const std::vector<double>& xs,
                                         const std::vector<double>& ys,
                                         const FitOptions& opts = {},
                                         FitDiag* diag = nullptr);

// ---------------------------------------------------------------------------
// SoA batched fitting path. Everything below produces results bit-identical
// to the scalar entry points above (fit_kernel / is_realistic); it differs
// only in how the work is laid out: per-kernel parameter panels, shared
// precomputed input tables, and Levenberg-Marquardt starts advanced in
// lockstep so model evaluations fuse into panel calls.

/// Number of Table-1 kernels (the width of a per-prefix fit batch).
inline constexpr std::size_t kNumKernels = kAllKernels.size();

/// The realism pole-walk grid for one RealismOptions: the walk points plus
/// their log/sqrt tables, precomputed once per enumeration and shared by
/// every candidate (the grid depends only on the range, never on the fit).
struct RealismGrid {
  int steps = 0;       ///< the walk visits steps + 1 points
  EvalTables tables;   ///< grid points (and ln/sqrt) in walk order

  /// Builds the grid exactly as the scalar is_realistic walk does:
  /// same clamped lo, same hi, same step count, same point arithmetic.
  void build(const RealismOptions& opts);
};

/// Evaluates f and its kernel denominator over the whole grid: vals[i] =
/// f(grid point i) and dens[i] = kernel_denominator at that point, each
/// bit-identical to the scalar calls inside is_realistic. Buffers are
/// resized in place.
void realism_walk_eval(const FittedFunction& f, const RealismGrid& grid,
                       std::vector<double>& vals, std::vector<double>& dens);

/// The realism predicate over precomputed walk values: applies the same
/// checks in the same order as is_realistic, so
///   realism_scan(walk values of f) == is_realistic(f)
/// for every fit and every filter sharing the grid's range.
bool realism_scan(const double* vals, const double* dens, int steps,
                  const RealismOptions& opts, double data_max_abs,
                  bool data_nonnegative);

/// Per-thread scratch for the batched fitting path: the multi-problem LM
/// workspace plus every prefix-local buffer, reused across thousands of
/// prefixes with no steady-state allocation.
struct FitBatchWorkspace {
  numeric::MultiLevMarWorkspace lm;
  std::vector<numeric::LevMarResult> lm_results;
  std::vector<double> pxs;        ///< prefix copy of the core counts
  std::vector<double> ys_scaled;  ///< prefix values scaled to O(1)
  std::vector<double> ys_all;     ///< concatenated scaled prefix values
  std::vector<double> starts;     ///< staged LM starts, one panel per kernel
  std::vector<std::size_t> prob_m, ys_off;   ///< per-LM-problem shape
  std::vector<std::size_t> prob_lo, prob_hi; ///< per-prefix problem ranges
  std::vector<double> pref_scale;            ///< per-prefix value scaling
  std::vector<double> walk_vals, walk_dens;  ///< realism walk buffers
  std::vector<double> pred_vals;  ///< batched prediction buffer
  std::vector<double> cand_panel; ///< realism candidate parameter panel
  /// LM model point evaluations, accumulated (+=) by
  /// fit_kernel_over_prefixes; reset it before a batch to meter one call.
  std::size_t model_evals = 0;
};

/// Fits ONE Table-1 kernel to every requested prefix of (xs, values) in a
/// single batched pass — the kernel-major layout of the enumeration loop.
/// Linear kernels solve each prefix by QR exactly as fit_kernel does; for
/// the nonlinear kernels every (prefix, LM start) pair becomes one problem
/// of a single lockstep levenberg_marquardt_multi call, so the model
/// evaluations of all prefixes fuse into shared SoA panels and the damping
/// factorizations of independent prefixes interleave. `tables` holds the
/// precomputed EvalTables of the *full* xs; prefix j reads its leading
/// prefixes[j] entries. out[j] receives the fit for prefixes[j],
/// bit-identical to fit_kernel(type, xs[0..prefixes[j]),
/// values[0..prefixes[j]), opts). When `diags` is non-null it points at
/// n_prefixes records; diags[j] is overwritten with the same diagnostic
/// record fit_kernel would produce for prefix j.
void fit_kernel_over_prefixes(KernelType type, const std::vector<double>& xs,
                              const EvalTables& tables,
                              const std::vector<double>& values,
                              const std::size_t* prefixes,
                              std::size_t n_prefixes, const FitOptions& opts,
                              FitBatchWorkspace& ws,
                              std::optional<FittedFunction>* out,
                              FitDiag* diags = nullptr);

/// Fits all six Table-1 kernels to the first `prefix` points of
/// (xs, values): a one-prefix wrapper over fit_kernel_over_prefixes.
/// out[k] receives the fit of kAllKernels[k], bit-identical to
/// fit_kernel(kAllKernels[k], xs[0..prefix), values[0..prefix), opts).
void fit_kernels_for_prefix(
    const std::vector<double>& xs, const EvalTables& tables,
    const std::vector<double>& values, std::size_t prefix,
    const FitOptions& opts, FitBatchWorkspace& ws,
    std::array<std::optional<FittedFunction>, kNumKernels>& out);

}  // namespace estima::core
