#include "core/fit_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numeric/levmar.hpp"
#include "numeric/linalg.hpp"
#include "numeric/matrix.hpp"

namespace estima::core {
namespace {

using numeric::LeastSquaresResult;
using numeric::Matrix;

constexpr double kTiny = 1e-30;

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

// Solves a linear system min ||A p - b|| with QR, falling back to ridge for
// short/rank-deficient prefixes (the paper's i-in-3..n loop regularly fits
// kernels with more parameters than points).
std::optional<std::vector<double>> robust_linear_solve(
    const Matrix& A, const std::vector<double>& b, double ridge_lambda) {
  if (auto direct = numeric::least_squares(A, b)) {
    return direct->x;
  }
  LeastSquaresResult r = numeric::ridge(A, b, ridge_lambda);
  for (double v : r.x) {
    if (!std::isfinite(v)) return std::nullopt;
  }
  return r.x;
}

// Linear-in-parameters kernels: direct solve on scaled values.
std::optional<FittedFunction> fit_linear_kernel(
    KernelType type, const std::vector<double>& xs,
    const std::vector<double>& ys_scaled, double y_scale,
    const FitOptions& opts) {
  const std::size_t k = kernel_param_count(type);
  Matrix A(xs.size(), k);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto row = kernel_basis(type, xs[i]);
    for (std::size_t j = 0; j < k; ++j) A(i, j) = row[j];
  }
  auto p = robust_linear_solve(A, ys_scaled, opts.ridge_lambda);
  if (!p) return std::nullopt;
  return FittedFunction{type, std::move(*p), y_scale};
}

// Starting points for the LM refinement of a nonlinear kernel: the
// linearised least-squares guess when the data admits one, plus two bland
// fallbacks. Shared by the scalar and the batched fitting paths so both
// refine from byte-identical starts.
//
// ExpRat's linearisation requires positive values, so it is skipped on
// mixed-sign data — but the bland fallback starts still run: LM itself
// needs no positivity, and a series with a single zero point would
// otherwise lose the ExpRat candidate entirely.
std::vector<std::vector<double>> nonlinear_starts(
    KernelType type, const std::vector<double>& xs,
    const std::vector<double>& ys_scaled, const FitOptions& opts) {
  const std::size_t k = kernel_param_count(type);

  const bool needs_positive = type == KernelType::kExpRat;
  bool all_positive = true;
  for (double y : ys_scaled) {
    if (y <= 0.0) {
      all_positive = false;
      break;
    }
  }

  std::vector<std::vector<double>> starts;
  if (!needs_positive || all_positive) {
    Matrix A(xs.size(), k);
    std::vector<double> b(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const auto row = kernel_linearized_row(type, xs[i], ys_scaled[i]);
      for (std::size_t j = 0; j < k; ++j) A(i, j) = row[j];
      b[i] = kernel_linearized_rhs(type, xs[i], ys_scaled[i]);
    }
    if (auto p = robust_linear_solve(A, b, opts.ridge_lambda)) {
      starts.push_back(std::move(*p));
    }
  }

  // A couple of bland fallback starts so LM has somewhere to begin even if
  // the linearisation was degenerate.
  std::vector<double> flat(k, 0.0);
  // Constant-at-mean start: a0 = mean(y), everything else 0.
  double meany = 0.0;
  for (double y : ys_scaled) meany += y;
  meany /= static_cast<double>(ys_scaled.size());
  if (type == KernelType::kExpRat) {
    flat[0] = std::log(std::max(meany, kTiny));
  } else {
    flat[0] = meany;
  }
  starts.push_back(flat);
  std::vector<double> gentle(k, 0.01);
  gentle[0] = flat[0];
  starts.push_back(gentle);
  return starts;
}

// Rational / ExpRat kernels: linearised initial guess + LM refinement.
std::optional<FittedFunction> fit_nonlinear_kernel(
    KernelType type, const std::vector<double>& xs,
    const std::vector<double>& ys_scaled, double y_scale,
    const FitOptions& opts, FitDiag* diag) {
  auto starts = nonlinear_starts(type, xs, ys_scaled, opts);

  numeric::LevMarOptions lm;
  lm.max_iterations = opts.levmar_max_iterations;
  const auto model = [type](const std::vector<double>& bxs,
                            const std::vector<double>& p,
                            std::vector<double>& out) {
    kernel_eval_batch(type, bxs, p, out);
  };
  // One workspace per thread: enumerate_candidates fans fits out across a
  // pool, and each worker reuses its buffers across thousands of fits.
  thread_local numeric::LevMarWorkspace ws;

  std::optional<FittedFunction> best;
  double best_rmse = std::numeric_limits<double>::infinity();
  for (auto& start : starts) {
    auto res =
        numeric::levenberg_marquardt(model, xs, ys_scaled, start, lm, ws);
    if (diag != nullptr) {
      diag->starts.push_back(
          FitDiag::Start{res.rmse, res.iterations, res.model_evals, res.term});
    }
    if (!std::isfinite(res.rmse)) continue;
    bool finite = true;
    for (double v : res.params) {
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
    }
    if (!finite) continue;
    if (res.rmse < best_rmse) {
      best_rmse = res.rmse;
      best = FittedFunction{type, std::move(res.params), y_scale};
    }
  }
  if (diag != nullptr) diag->solved = best.has_value();
  return best;
}

}  // namespace

bool is_realistic(const FittedFunction& f, const RealismOptions& opts,
                  double data_max_abs, bool data_nonnegative) {
  const double bound =
      opts.explosion_factor * std::max(data_max_abs, kTiny);
  const double neg_floor =
      -opts.negativity_slack * std::max(data_max_abs, kTiny);

  // Walk the range densely enough to catch poles between integer counts,
  // but never more finely than max_steps: on wide extrapolation ranges the
  // un-capped walk did thousands of kernel evals per candidate and
  // dominated enumeration time, while a pole narrower than the capped grid
  // spacing is not reachable from a fit through integer core counts.
  // Core counts are positive, so a range_min <= 0 (callers may pass 0 for
  // "from the start") is clamped: walking CubicLn through log(n <= 0)
  // would NaN-reject perfectly good fits over the real range.
  const double lo = opts.range_min > 0.0 ? opts.range_min : 1.0;
  const double hi = std::max(opts.range_max, lo + 1.0);
  const int steps = std::min(std::max(64, static_cast<int>((hi - lo) * 4)),
                             std::max(opts.max_steps, 1));
  double prev_den = 0.0;
  bool have_prev = false;
  for (int s = 0; s <= steps; ++s) {
    const double n = lo + (hi - lo) * static_cast<double>(s) / steps;
    const double v = f(n);
    if (!std::isfinite(v)) return false;
    if (std::fabs(v) > bound) return false;
    if (data_nonnegative && opts.require_nonnegative && v < neg_floor) {
      return false;
    }
    const double den = kernel_denominator(f.type, n, f.params);
    if (std::fabs(den) < 1e-9) return false;  // pole (or nearly) in range
    if (have_prev && std::signbit(den) != std::signbit(prev_den)) {
      return false;  // denominator crosses zero inside the range
    }
    prev_den = den;
    have_prev = true;
  }
  return true;
}

std::optional<FittedFunction> fit_kernel(KernelType type,
                                         const std::vector<double>& xs,
                                         const std::vector<double>& ys,
                                         const FitOptions& opts,
                                         FitDiag* diag) {
  if (diag != nullptr) *diag = FitDiag{};  // Path::kGuard until proven better
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  for (double x : xs) {
    if (!(x > 0.0)) return std::nullopt;  // core counts are positive
  }

  // Scale values to O(1) for conditioning. All-zero series fit trivially —
  // but only for kernels where zero params evaluate to zero. ExpRat has no
  // parameter vector producing the zero function (exp(anything) > 0), and
  // zero params mean exp(0) = 1: returning them would answer an all-zero
  // campaign with a prediction of 1.0.
  const double scale = max_abs(ys);
  if (scale <= 0.0) {
    if (type == KernelType::kExpRat) return std::nullopt;
    if (diag != nullptr) {
      diag->path = FitDiag::Path::kTrivial;
      diag->solved = true;
    }
    std::vector<double> zeros(kernel_param_count(type), 0.0);
    return FittedFunction{type, std::move(zeros), 1.0};
  }
  std::vector<double> ys_scaled(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) ys_scaled[i] = ys[i] / scale;

  if (kernel_is_linear(type)) {
    auto fitted = fit_linear_kernel(type, xs, ys_scaled, scale, opts);
    if (diag != nullptr) {
      diag->path = FitDiag::Path::kLinear;
      diag->solved = fitted.has_value();
    }
    return fitted;
  }
  if (diag != nullptr) diag->path = FitDiag::Path::kNonlinear;
  return fit_nonlinear_kernel(type, xs, ys_scaled, scale, opts, diag);
}

// ---------------------------------------------------------------------------
// SoA batched fitting path.

namespace {

// Panel-model adapter for the multi-problem LM engine: evaluates one
// kernel over the leading points of the shared input tables, each set
// covering its own ms[s] points (the fused rounds mix prefix lengths).
struct KernelPanelCtx {
  KernelType type;
  const EvalTables* tables;
  std::size_t max_m;
};

void kernel_panel_eval(const void* vctx, const double* panel,
                       const std::size_t* ms, std::size_t n_sets, double* out,
                       std::size_t out_stride) {
  const auto* c = static_cast<const KernelPanelCtx*>(vctx);
  kernel_eval_panel_v(c->type, *c->tables, ms, c->max_m, out_stride, panel,
                      n_sets, out);
}

}  // namespace

void RealismGrid::build(const RealismOptions& opts) {
  // Must mirror the is_realistic walk exactly: same clamped lo, same hi,
  // same step count, same per-point arithmetic — so the grid points are
  // the same doubles the scalar walk visits.
  const double lo = opts.range_min > 0.0 ? opts.range_min : 1.0;
  const double hi = std::max(opts.range_max, lo + 1.0);
  steps = std::min(std::max(64, static_cast<int>((hi - lo) * 4)),
                   std::max(opts.max_steps, 1));
  std::vector<double> pts(static_cast<std::size_t>(steps) + 1);
  for (int s = 0; s <= steps; ++s) {
    pts[static_cast<std::size_t>(s)] =
        lo + (hi - lo) * static_cast<double>(s) / steps;
  }
  tables.assign(pts);
}

void realism_walk_eval(const FittedFunction& f, const RealismGrid& grid,
                       std::vector<double>& vals, std::vector<double>& dens) {
  const std::size_t count = grid.tables.size();
  vals.resize(count);
  dens.resize(count);
  kernel_eval_panel(f.type, grid.tables, count, f.params.data(), 1,
                    vals.data());
  // f(n) = y_scale * kernel_eval(n): same multiplication the scalar
  // FittedFunction::operator() performs, applied after the panel.
  const double y_scale = f.y_scale;
  for (std::size_t i = 0; i < count; ++i) vals[i] = y_scale * vals[i];
  kernel_denominator_batch(f.type, grid.tables, count, f.params, dens.data());
}

bool realism_scan(const double* vals, const double* dens, int steps,
                  const RealismOptions& opts, double data_max_abs,
                  bool data_nonnegative) {
  const double bound =
      opts.explosion_factor * std::max(data_max_abs, kTiny);
  const double neg_floor =
      -opts.negativity_slack * std::max(data_max_abs, kTiny);
  double prev_den = 0.0;
  bool have_prev = false;
  for (int s = 0; s <= steps; ++s) {
    const double v = vals[s];
    if (!std::isfinite(v)) return false;
    if (std::fabs(v) > bound) return false;
    if (data_nonnegative && opts.require_nonnegative && v < neg_floor) {
      return false;
    }
    const double den = dens[s];
    if (std::fabs(den) < 1e-9) return false;  // pole (or nearly) in range
    if (have_prev && std::signbit(den) != std::signbit(prev_den)) {
      return false;  // denominator crosses zero inside the range
    }
    prev_den = den;
    have_prev = true;
  }
  return true;
}

void fit_kernel_over_prefixes(KernelType type, const std::vector<double>& xs,
                              const EvalTables& tables,
                              const std::vector<double>& values,
                              const std::size_t* prefixes,
                              std::size_t n_prefixes, const FitOptions& opts,
                              FitBatchWorkspace& ws,
                              std::optional<FittedFunction>* out,
                              FitDiag* diags) {
  for (std::size_t j = 0; j < n_prefixes; ++j) out[j].reset();
  if (diags != nullptr) {
    for (std::size_t j = 0; j < n_prefixes; ++j) diags[j] = FitDiag{};
  }
  if (n_prefixes == 0) return;

  // Core counts must be positive over the prefix (fit_kernel's guard). The
  // points are shared, so one scan yields the longest admissible prefix.
  std::size_t positive_limit = 0;
  while (positive_limit < xs.size() && xs[positive_limit] > 0.0) {
    ++positive_limit;
  }

  const bool linear = kernel_is_linear(type);
  numeric::LevMarOptions lm;
  lm.max_iterations = opts.levmar_max_iterations;

  // Gather phase: walk the prefixes once, resolving the cheap outcomes
  // (guards, all-zero shortcut, linear QR solves) inline and staging every
  // nonlinear (prefix, LM start) pair as one problem of a single lockstep
  // multi-LM batch.
  ws.ys_all.clear();
  ws.starts.clear();
  ws.prob_m.clear();
  ws.ys_off.clear();
  ws.prob_lo.assign(n_prefixes, 0);
  ws.prob_hi.assign(n_prefixes, 0);
  ws.pref_scale.assign(n_prefixes, 0.0);
  const std::size_t np = kernel_param_count(type);
  std::size_t max_m = 0;

  for (std::size_t j = 0; j < n_prefixes; ++j) {
    const std::size_t prefix = prefixes[j];
    if (prefix > xs.size() || prefix > values.size() || prefix < 2) continue;
    if (prefix > positive_limit) continue;

    double scale = 0.0;
    for (std::size_t i = 0; i < prefix; ++i) {
      scale = std::max(scale, std::fabs(values[i]));
    }
    if (scale <= 0.0) {
      // All-zero series fit trivially — except ExpRat, for which zero
      // params mean exp(0) = 1, not 0 (see fit_kernel).
      if (type != KernelType::kExpRat) {
        std::vector<double> zeros(np, 0.0);
        out[j] = FittedFunction{type, std::move(zeros), 1.0};
        if (diags != nullptr) {
          diags[j].path = FitDiag::Path::kTrivial;
          diags[j].solved = true;
        }
      }
      continue;
    }

    ws.pxs.assign(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(prefix));
    ws.ys_scaled.resize(prefix);
    for (std::size_t i = 0; i < prefix; ++i) {
      ws.ys_scaled[i] = values[i] / scale;
    }

    if (linear) {
      out[j] = fit_linear_kernel(type, ws.pxs, ws.ys_scaled, scale, opts);
      if (diags != nullptr) {
        diags[j].path = FitDiag::Path::kLinear;
        diags[j].solved = out[j].has_value();
      }
      continue;
    }

    const auto starts = nonlinear_starts(type, ws.pxs, ws.ys_scaled, opts);
    if (diags != nullptr) diags[j].path = FitDiag::Path::kNonlinear;
    if (starts.empty()) continue;
    const std::size_t y_off = ws.ys_all.size();
    ws.ys_all.insert(ws.ys_all.end(), ws.ys_scaled.begin(),
                     ws.ys_scaled.end());
    ws.pref_scale[j] = scale;
    ws.prob_lo[j] = ws.prob_m.size();
    for (const auto& start : starts) {
      ws.starts.insert(ws.starts.end(), start.begin(), start.end());
      ws.prob_m.push_back(prefix);
      ws.ys_off.push_back(y_off);
    }
    ws.prob_hi[j] = ws.prob_m.size();
    max_m = std::max(max_m, prefix);
  }

  const std::size_t n_probs = ws.prob_m.size();
  if (n_probs == 0) return;

  KernelPanelCtx ctx{type, &tables, max_m};
  numeric::PanelModel model{&kernel_panel_eval, &ctx, np, max_m};
  if (ws.lm_results.size() < n_probs) ws.lm_results.resize(n_probs);
  numeric::levenberg_marquardt_multi(
      model, ws.ys_all.data(), ws.ys_off.data(), ws.prob_m.data(),
      ws.starts.data(), n_probs, lm, ws.lm, ws.lm_results.data());
  for (std::size_t s = 0; s < n_probs; ++s) {
    ws.model_evals += ws.lm_results[s].model_evals;
  }

  // Scatter phase: best-of-starts per prefix, same rule and order as the
  // scalar path (each problem's LM trajectory is bit-identical to a
  // sequential fit, so the winner is the scalar winner).
  for (std::size_t j = 0; j < n_prefixes; ++j) {
    if (ws.prob_lo[j] == ws.prob_hi[j]) continue;
    std::optional<FittedFunction> best;
    double best_rmse = std::numeric_limits<double>::infinity();
    for (std::size_t s = ws.prob_lo[j]; s < ws.prob_hi[j]; ++s) {
      numeric::LevMarResult& res = ws.lm_results[s];
      if (diags != nullptr) {
        diags[j].starts.push_back(FitDiag::Start{
            res.rmse, res.iterations, res.model_evals, res.term});
      }
      if (!std::isfinite(res.rmse)) continue;
      bool finite = true;
      for (double v : res.params) {
        if (!std::isfinite(v)) {
          finite = false;
          break;
        }
      }
      if (!finite) continue;
      if (res.rmse < best_rmse) {
        best_rmse = res.rmse;
        best = FittedFunction{type, res.params, ws.pref_scale[j]};
      }
    }
    if (diags != nullptr) diags[j].solved = best.has_value();
    out[j] = std::move(best);
  }
}

void fit_kernels_for_prefix(
    const std::vector<double>& xs, const EvalTables& tables,
    const std::vector<double>& values, std::size_t prefix,
    const FitOptions& opts, FitBatchWorkspace& ws,
    std::array<std::optional<FittedFunction>, kNumKernels>& out) {
  for (std::size_t k = 0; k < kNumKernels; ++k) {
    fit_kernel_over_prefixes(kAllKernels[k], xs, tables, values, &prefix, 1,
                             opts, ws, &out[k]);
  }
}

}  // namespace estima::core
