#include "core/fit_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numeric/levmar.hpp"
#include "numeric/linalg.hpp"
#include "numeric/matrix.hpp"

namespace estima::core {
namespace {

using numeric::LeastSquaresResult;
using numeric::Matrix;

constexpr double kTiny = 1e-30;

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

// Solves a linear system min ||A p - b|| with QR, falling back to ridge for
// short/rank-deficient prefixes (the paper's i-in-3..n loop regularly fits
// kernels with more parameters than points).
std::optional<std::vector<double>> robust_linear_solve(
    const Matrix& A, const std::vector<double>& b, double ridge_lambda) {
  if (auto direct = numeric::least_squares(A, b)) {
    return direct->x;
  }
  LeastSquaresResult r = numeric::ridge(A, b, ridge_lambda);
  for (double v : r.x) {
    if (!std::isfinite(v)) return std::nullopt;
  }
  return r.x;
}

// Linear-in-parameters kernels: direct solve on scaled values.
std::optional<FittedFunction> fit_linear_kernel(
    KernelType type, const std::vector<double>& xs,
    const std::vector<double>& ys_scaled, double y_scale,
    const FitOptions& opts) {
  const std::size_t k = kernel_param_count(type);
  Matrix A(xs.size(), k);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto row = kernel_basis(type, xs[i]);
    for (std::size_t j = 0; j < k; ++j) A(i, j) = row[j];
  }
  auto p = robust_linear_solve(A, ys_scaled, opts.ridge_lambda);
  if (!p) return std::nullopt;
  return FittedFunction{type, std::move(*p), y_scale};
}

// Rational / ExpRat kernels: linearised initial guess + LM refinement.
std::optional<FittedFunction> fit_nonlinear_kernel(
    KernelType type, const std::vector<double>& xs,
    const std::vector<double>& ys_scaled, double y_scale,
    const FitOptions& opts) {
  const std::size_t k = kernel_param_count(type);

  // ExpRat's linearisation requires positive values.
  const bool needs_positive = type == KernelType::kExpRat;
  bool all_positive = true;
  for (double y : ys_scaled) {
    if (y <= 0.0) {
      all_positive = false;
      break;
    }
  }

  std::vector<std::vector<double>> starts;
  if (!needs_positive || all_positive) {
    Matrix A(xs.size(), k);
    std::vector<double> b(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const auto row = kernel_linearized_row(type, xs[i], ys_scaled[i]);
      for (std::size_t j = 0; j < k; ++j) A(i, j) = row[j];
      b[i] = kernel_linearized_rhs(type, xs[i], ys_scaled[i]);
    }
    if (auto p = robust_linear_solve(A, b, opts.ridge_lambda)) {
      starts.push_back(std::move(*p));
    }
  }
  if (needs_positive && !all_positive) return std::nullopt;

  // A couple of bland fallback starts so LM has somewhere to begin even if
  // the linearisation was degenerate.
  {
    std::vector<double> flat(k, 0.0);
    // Constant-at-mean start: a0 = mean(y), everything else 0.
    double meany = 0.0;
    for (double y : ys_scaled) meany += y;
    meany /= static_cast<double>(ys_scaled.size());
    if (type == KernelType::kExpRat) {
      flat[0] = std::log(std::max(meany, kTiny));
    } else {
      flat[0] = meany;
    }
    starts.push_back(flat);
    std::vector<double> gentle(k, 0.01);
    gentle[0] = flat[0];
    starts.push_back(gentle);
  }

  numeric::LevMarOptions lm;
  lm.max_iterations = opts.levmar_max_iterations;
  const auto model = [type](const std::vector<double>& bxs,
                            const std::vector<double>& p,
                            std::vector<double>& out) {
    kernel_eval_batch(type, bxs, p, out);
  };
  // One workspace per thread: enumerate_candidates fans fits out across a
  // pool, and each worker reuses its buffers across thousands of fits.
  thread_local numeric::LevMarWorkspace ws;

  std::optional<FittedFunction> best;
  double best_rmse = std::numeric_limits<double>::infinity();
  for (auto& start : starts) {
    auto res =
        numeric::levenberg_marquardt(model, xs, ys_scaled, start, lm, ws);
    if (!std::isfinite(res.rmse)) continue;
    bool finite = true;
    for (double v : res.params) {
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
    }
    if (!finite) continue;
    if (res.rmse < best_rmse) {
      best_rmse = res.rmse;
      best = FittedFunction{type, std::move(res.params), y_scale};
    }
  }
  return best;
}

}  // namespace

bool is_realistic(const FittedFunction& f, const RealismOptions& opts,
                  double data_max_abs, bool data_nonnegative) {
  const double bound =
      opts.explosion_factor * std::max(data_max_abs, kTiny);
  const double neg_floor =
      -opts.negativity_slack * std::max(data_max_abs, kTiny);

  // Walk the range densely enough to catch poles between integer counts,
  // but never more finely than max_steps: on wide extrapolation ranges the
  // un-capped walk did thousands of kernel evals per candidate and
  // dominated enumeration time, while a pole narrower than the capped grid
  // spacing is not reachable from a fit through integer core counts.
  const double lo = opts.range_min;
  const double hi = std::max(opts.range_max, lo + 1.0);
  const int steps = std::min(std::max(64, static_cast<int>((hi - lo) * 4)),
                             std::max(opts.max_steps, 1));
  double prev_den = 0.0;
  bool have_prev = false;
  for (int s = 0; s <= steps; ++s) {
    const double n = lo + (hi - lo) * static_cast<double>(s) / steps;
    const double v = f(n);
    if (!std::isfinite(v)) return false;
    if (std::fabs(v) > bound) return false;
    if (data_nonnegative && opts.require_nonnegative && v < neg_floor) {
      return false;
    }
    const double den = kernel_denominator(f.type, n, f.params);
    if (std::fabs(den) < 1e-9) return false;  // pole (or nearly) in range
    if (have_prev && std::signbit(den) != std::signbit(prev_den)) {
      return false;  // denominator crosses zero inside the range
    }
    prev_den = den;
    have_prev = true;
  }
  return true;
}

std::optional<FittedFunction> fit_kernel(KernelType type,
                                         const std::vector<double>& xs,
                                         const std::vector<double>& ys,
                                         const FitOptions& opts) {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  for (double x : xs) {
    if (!(x > 0.0)) return std::nullopt;  // core counts are positive
  }

  // Scale values to O(1) for conditioning. All-zero series fit trivially.
  const double scale = max_abs(ys);
  if (scale <= 0.0) {
    std::vector<double> zeros(kernel_param_count(type), 0.0);
    return FittedFunction{type, std::move(zeros), 1.0};
  }
  std::vector<double> ys_scaled(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) ys_scaled[i] = ys[i] / scale;

  if (kernel_is_linear(type)) {
    return fit_linear_kernel(type, xs, ys_scaled, scale, opts);
  }
  return fit_nonlinear_kernel(type, xs, ys_scaled, scale, opts);
}

}  // namespace estima::core
