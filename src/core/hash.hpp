// 64-bit FNV-1a over canonicalized primitive fields.
//
// The serving layer keys its result cache with these digests, so the byte
// feed must be stable across runs and canonical for doubles: -0.0 folds
// onto +0.0 and every NaN payload onto the one quiet-NaN pattern, because
// values that compare equal (or are equally unusable) must never split a
// campaign across cache lines. Strings are length-prefixed so that
// adjacent fields cannot alias ("ab","c" vs "a","bc").
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

namespace estima::core {

class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void bytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= kPrime;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u64(v ? 1u : 0u); }
  void f64(double v) {
    if (v == 0.0) v = 0.0;  // folds -0.0 onto +0.0
    if (v != v) v = std::numeric_limits<double>::quiet_NaN();
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

}  // namespace estima::core
