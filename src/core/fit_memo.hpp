// Cross-prediction (kernel, prefix) fit memoization for streaming
// campaigns.
//
// A (kernel, prefix) fit depends only on the prefix's data points and the
// FitOptions — never on the checkpoint setting, the realism filter, the
// full series length, or the extrapolation horizon (see extrapolator.hpp).
// Appending a measurement point to a campaign therefore leaves every
// previously fitted prefix bit-identical: only the prefixes that now reach
// into the new point are new work. A FitMemo carries those fit results
// across predict() calls so an append-then-repredict executes only the new
// prefixes' fits.
//
// Identity contract: attaching a FitMemo must leave predictions
// byte-identical to a cold predict(). Two properties deliver that:
//   * keys digest the RAW BIT PATTERNS of the prefix data (no -0.0/NaN
//     canonicalization) plus the kernel id and every FitOptions field, so
//     an entry can only ever be replayed against bit-equal inputs;
//   * entries store the fit outcome (FittedFunction or "no fit") together
//     with its FitDiag, so the serial audit emission replays the exact
//     records the executed fit produced.
// Everything downstream of the fit (realism walks, checkpoint scoring,
// prediction panels) depends on the full series and is recomputed on
// every call — only the expensive LM refinement is memoized.
//
// Thread safety: all methods are safe to call concurrently; one memo is
// shared by the parallel category fan-out and the six per-kernel fit jobs
// inside each enumeration. Like `pool` and `audit`, the memo pointer is
// excluded from config_signature — it cannot change produced values, only
// how fast they are produced.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/fit_engine.hpp"
#include "core/kernels.hpp"

namespace estima::core {

/// The memoized outcome of one executed (kernel, prefix) fit: the fitted
/// function (nullopt when the fit legitimately failed — a failure is as
/// reusable as a success) plus the diagnostic record the audit layer
/// replays.
struct FitMemoEntry {
  std::optional<FittedFunction> fn;
  FitDiag diag;
};

struct FitMemoStats {
  std::uint64_t hits = 0;     ///< fits served from the memo
  std::uint64_t misses = 0;   ///< lookups that had to execute the fit
  std::uint64_t entries = 0;  ///< resident (kernel, prefix) entries
};

class FitMemo {
 public:
  FitMemo() = default;
  FitMemo(const FitMemo&) = delete;
  FitMemo& operator=(const FitMemo&) = delete;

  /// Digest of one fit job's full input: kernel id, FitOptions, prefix
  /// length, and the raw bits of xs[0..prefix) / ys[0..prefix). Bit-equal
  /// inputs — and only bit-equal inputs — share a key.
  static std::uint64_t key_of(KernelType type, const double* xs,
                              const double* ys, std::size_t prefix,
                              const FitOptions& opts);

  /// Copies the entry for `key` into `*out` and counts a hit; counts a
  /// miss and leaves `*out` untouched when absent.
  bool lookup(std::uint64_t key, FitMemoEntry* out);

  /// Inserts (or overwrites — same key means bit-equal input, so the
  /// value is identical) the entry for `key`.
  void insert(std::uint64_t key, FitMemoEntry entry);

  FitMemoStats stats() const;

  /// Drops every entry (a replaced campaign is a brand-new series whose
  /// old fits must never replay) while keeping the cumulative hit/miss
  /// counters — the accounting spans the memo's lifetime, not one series.
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, FitMemoEntry> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace estima::core
