#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/fit_audit.hpp"
#include "core/hash.hpp"
#include "numeric/stats.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace estima::core {
namespace {

// Constant-function fallback used when a stall category has no realistic
// kernel fit (e.g. an all-zero series): extend the last measured value.
SeriesExtrapolation constant_extension(double value) {
  SeriesExtrapolation out;
  out.best = FittedFunction{KernelType::kCubicLn, {value, 0.0, 0.0, 0.0}, 1.0};
  out.checkpoint_rmse = 0.0;
  out.chosen_prefix = 0;
  out.chosen_checkpoints = 0;
  return out;
}

// True when the minimum of `time` over the compared range sits near the top
// end, i.e. the application keeps scaling across the whole range.
bool scales_to_end(const std::vector<int>& cores,
                   const std::vector<double>& time) {
  if (cores.empty()) return true;
  std::size_t best = 0;
  for (std::size_t i = 1; i < time.size(); ++i) {
    if (time[i] < time[best]) best = i;
  }
  if (cores[best] * 4 >= cores.back() * 3) return true;  // best in top quarter
  // A plateau also counts as scaling: the minimum sits earlier but using
  // the whole machine costs almost nothing extra.
  return time.back() <= 1.12 * time[best];
}

int argmin_cores(const std::vector<int>& cores,
                 const std::vector<double>& time) {
  if (cores.empty()) return 0;
  std::size_t best = 0;
  for (std::size_t i = 1; i < time.size(); ++i) {
    if (time[i] < time[best]) best = i;
  }
  return cores[best];
}

double compute_freq_scale(const MeasurementSet& ms,
                          const PredictionConfig& cfg) {
  if (cfg.target_freq_ghz > 0.0 && ms.freq_ghz > 0.0) {
    return ms.freq_ghz / cfg.target_freq_ghz;
  }
  return 1.0;
}

ExtrapolationConfig tuned_extrap(const PredictionConfig& cfg,
                                 parallel::ThreadPool* pool,
                                 const Deadline* deadline = nullptr,
                                 obs::TraceContext* trace = nullptr,
                                 FitMemo* memo = nullptr) {
  ExtrapolationConfig e = cfg.extrap;
  e.pool = pool;
  e.deadline = deadline;
  e.trace = trace;
  e.memo = memo;
  // A caller-set audit sink cannot serve the parallel category fan-out
  // (one sink, many writers); predict() hands each category its own sink
  // via the PredictionAudit overload instead. cfg.extrap.metrics stays:
  // it is thread-safe and shareable by design.
  e.audit = nullptr;
  if (!cfg.target_cores.empty()) {
    e.target_max_cores = std::max<double>(
        e.target_max_cores,
        *std::max_element(cfg.target_cores.begin(), cfg.target_cores.end()));
  }
  return e;
}

// An enumeration that recorded cancelled or aborted fit jobs returned
// abandoned (empty) candidate lists; surface that as the right exception
// from serial context — never let an abandoned enumeration fall through
// to a fallback path, which would silently change the answer.
void raise_if_abandoned(const EnumerationStats& stats, const char* where) {
  if (stats.fits_cancelled > 0) {
    throw DeadlineExceeded(std::string("predict: deadline expired during ") +
                           where);
  }
  if (stats.fits_aborted > 0) {
    throw std::runtime_error(std::string("predict: fit workspace "
                                         "allocation failed during ") +
                             where);
  }
}

}  // namespace

int Prediction::best_core_count() const { return argmin_cores(cores, time_s); }

Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg) {
  return predict(ms, cfg, cfg.extrap.pool);
}

Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg,
                   parallel::ThreadPool* pool) {
  return predict(ms, cfg, pool, cfg.extrap.deadline);
}

Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg,
                   parallel::ThreadPool* pool, const Deadline* deadline) {
  return predict(ms, cfg, pool, deadline, cfg.extrap.trace);
}

Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg,
                   parallel::ThreadPool* pool, const Deadline* deadline,
                   obs::TraceContext* trace) {
  return predict(ms, cfg, pool, deadline, trace, nullptr);
}

Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg,
                   parallel::ThreadPool* pool, const Deadline* deadline,
                   obs::TraceContext* trace, PredictionAudit* audit) {
  return predict(ms, cfg, pool, deadline, trace, audit, cfg.extrap.memo);
}

Prediction predict(const MeasurementSet& ms, const PredictionConfig& cfg,
                   parallel::ThreadPool* pool, const Deadline* deadline,
                   obs::TraceContext* trace, PredictionAudit* audit,
                   FitMemo* memo) {
  if (deadline != nullptr && deadline->expired()) {
    throw DeadlineExceeded("predict: deadline expired before work began");
  }
  ms.validate();
  if (cfg.target_cores.empty()) {
    throw std::invalid_argument("predict: no target core counts");
  }
  // The standard configuration needs 5 points (3-point prefix + 2
  // checkpoints); production campaigns on tiny measurement machines (the
  // paper measures memcached on 3 desktop cores) can run with 3 points and
  // a relaxed ExtrapolationConfig (min_prefix = 2, one checkpoint).
  if (ms.num_points() < 3) {
    throw std::invalid_argument("predict: need at least 3 measurement points");
  }

  MeasurementSet input =
      ms.filtered(cfg.include_frontend, cfg.use_software_stalls);
  if (input.categories.empty()) {
    throw std::invalid_argument("predict: no stall categories selected");
  }

  // Ablation: merge every selected category into one aggregate series.
  if (cfg.aggregate_mode) {
    StallSeries agg;
    agg.name = "aggregate-backend-stalls";
    agg.domain = StallDomain::kHardwareBackend;
    agg.values.assign(input.num_points(), 0.0);
    for (const auto& cat : input.categories) {
      for (std::size_t i = 0; i < cat.values.size(); ++i) {
        agg.values[i] += cat.values[i];
      }
    }
    input.categories = {std::move(agg)};
  }

  const ExtrapolationConfig extrap =
      tuned_extrap(cfg, pool, deadline, trace, memo);

  Prediction out;
  out.cores = cfg.target_cores;
  out.freq_scale = compute_freq_scale(ms, cfg);

  // One wall-clock span over the whole fit phase — category
  // extrapolation (B) through the scaling-factor enumeration (C). The
  // nested fit.levmar / fit.realism spans recorded by the jobs inside
  // aggregate worker CPU time within this window.
  obs::SpanTimer enumerate_span(trace, obs::Stage::kFitEnumerate);

  // (B) Extrapolate every stall category independently; weak scaling
  // multiplies the extrapolated stall volume by the dataset factor. The
  // categories are independent series, so they fan out across the pool
  // (nested with the per-category fit fan-out; parallel_for nests safely).
  // Each slot is written by exactly one job and assembled serially below,
  // keeping the output bit-identical to a single-threaded run.
  std::vector<std::optional<SeriesExtrapolation>> exts(
      input.categories.size());
  std::vector<EnumerationStats> ext_stats(input.categories.size());
  if (audit != nullptr) {
    audit->categories.clear();
    audit->categories.resize(input.categories.size());
    for (std::size_t i = 0; i < input.categories.size(); ++i) {
      audit->categories[i].name = input.categories[i].name;
    }
    audit->factor = FitAudit{};
    audit->factor_used_relaxed = false;
  }
  parallel::parallel_for(
      extrap.pool, input.categories.size(), [&](std::size_t i) {
        if (audit != nullptr) {
          ExtrapolationConfig per_cat = extrap;
          per_cat.audit = &audit->categories[i].audit;
          exts[i] = extrapolate_series(input.cores, input.categories[i].values,
                                       per_cat, &ext_stats[i]);
        } else {
          exts[i] = extrapolate_series(input.cores, input.categories[i].values,
                                       extrap, &ext_stats[i]);
        }
      });
  // A category whose enumeration was abandoned mid-way reads as "no
  // realistic fit" — indistinguishable from a legitimately unfittable
  // series — so the abandonment check must run before the
  // constant-extension fallback below can capture it.
  for (const auto& stats : ext_stats) {
    raise_if_abandoned(stats, "category extrapolation");
  }
  out.categories.reserve(input.categories.size());
  for (std::size_t i = 0; i < input.categories.size(); ++i) {
    const auto& cat = input.categories[i];
    CategoryPrediction cp;
    cp.name = cat.name;
    cp.domain = cat.domain;
    if (exts[i]) {
      cp.extrapolation = std::move(*exts[i]);
    } else {
      cp.extrapolation = constant_extension(cat.values.back());
      // The enumeration still ran; keep its work accounting visible.
      cp.extrapolation.candidates_considered = ext_stats[i].candidates_attempted;
      cp.extrapolation.fits_executed = ext_stats[i].fits_executed;
      cp.extrapolation.duplicate_fits_eliminated =
          ext_stats[i].duplicate_fits_eliminated;
    }
    cp.values = cp.extrapolation.predict(cfg.target_cores);
    for (double& v : cp.values) v *= cfg.dataset_scale;
    out.categories.push_back(std::move(cp));
  }

  // Total stalled cycles per core at the target core counts.
  out.stalls_per_core.assign(cfg.target_cores.size(), 0.0);
  for (std::size_t i = 0; i < cfg.target_cores.size(); ++i) {
    double total = 0.0;
    for (const auto& cp : out.categories) total += cp.values[i];
    out.stalls_per_core[i] = total / static_cast<double>(cfg.target_cores[i]);
  }

  // (C) Scaling factor: time(n) = f(n) * spc(n). Compute measured factor
  // values, enumerate kernel fits, choose the one whose induced prediction
  // correlates best with stalls-per-core (Section 3.1.3).
  const std::vector<double> spc_meas =
      input.stalls_per_core(cfg.include_frontend, cfg.use_software_stalls);
  std::vector<double> factor_meas(input.num_points());
  for (std::size_t i = 0; i < input.num_points(); ++i) {
    const double spc = spc_meas[i];
    if (spc <= 0.0) {
      throw std::invalid_argument(
          "predict: zero stalls-per-core at a measured point");
    }
    factor_meas[i] = input.time_s[i] * out.freq_scale / spc;
  }

  // The scaling factor (seconds per stalled-cycle-per-core) varies slowly
  // with n — it never explodes the way stall volumes can. Bound its
  // extrapolation to a small multiple of the measured range so pathological
  // fits cannot win the correlation contest below; fall back to the default
  // (loose) realism before giving up. The two passes differ only in the
  // realism filter, so they score one shared fit execution instead of
  // refitting everything on the retry (auditable via factor_stats).
  RealismOptions strict_realism = extrap.realism;
  strict_realism.explosion_factor = 5.0;
  ExtrapolationConfig factor_extrap = extrap;
  if (audit != nullptr) factor_extrap.audit = &audit->factor;
  auto factor_passes = enumerate_candidates_filtered(
      input.cores, factor_meas, factor_extrap,
      {strict_realism, extrap.realism}, &out.factor_stats);
  raise_if_abandoned(out.factor_stats, "scaling-factor enumeration");
  enumerate_span.stop();
  out.factor_used_relaxed_realism = factor_passes[0].empty();
  if (audit != nullptr) {
    audit->factor_used_relaxed = out.factor_used_relaxed_realism;
  }
  std::vector<CandidateFit> factor_candidates = std::move(
      out.factor_used_relaxed_realism ? factor_passes[1] : factor_passes[0]);
  if (factor_candidates.empty()) {
    throw std::invalid_argument(
        "predict: no realistic scaling-factor fit found");
  }

  // Candidates are fits of the measured factor values; before ranking by
  // correlation, drop those that misfit the checkpoints by far more than
  // the best candidate does (they only ever win by coincidence).
  {
    double best_rmse = std::numeric_limits<double>::infinity();
    for (const auto& cand : factor_candidates) {
      best_rmse = std::min(best_rmse, cand.checkpoint_rmse);
    }
    const double cutoff = std::max(best_rmse * 20.0, best_rmse + 1e-30);
    std::vector<CandidateFit> kept;
    for (auto& cand : factor_candidates) {
      if (cand.checkpoint_rmse <= cutoff) kept.push_back(std::move(cand));
    }
    factor_candidates = std::move(kept);
  }

  // Rank candidates by the correlation of the induced time prediction with
  // stalls-per-core (Section 3.1.3). Correlation alone cannot distinguish
  // between fits within noise of each other, so among candidates whose
  // correlation is within a small band of the best we keep the one that
  // fits the factor checkpoints most faithfully.
  struct ScoredCandidate {
    const CandidateFit* cand;
    double corr;
  };
  std::vector<ScoredCandidate> scored;
  for (const auto& cand : factor_candidates) {
    std::vector<double> time_pred(cfg.target_cores.size());
    bool ok = true;
    for (std::size_t i = 0; i < cfg.target_cores.size(); ++i) {
      const double f = cand.fn(static_cast<double>(cfg.target_cores[i]));
      const double t = f * out.stalls_per_core[i];
      if (!std::isfinite(t) || t <= 0.0) {
        ok = false;
        break;
      }
      time_pred[i] = t;
    }
    if (!ok) continue;
    scored.push_back(
        {&cand, numeric::pearson(time_pred, out.stalls_per_core)});
  }
  if (scored.empty()) {
    throw std::invalid_argument(
        "predict: every scaling-factor candidate produced degenerate times");
  }
  double best_corr = -2.0;
  for (const auto& s : scored) best_corr = std::max(best_corr, s.corr);
  constexpr double kCorrBand = 0.01;
  const CandidateFit* chosen = nullptr;
  double chosen_corr = -2.0;
  for (const auto& s : scored) {
    if (s.corr + kCorrBand < best_corr) continue;
    if (!chosen || s.cand->checkpoint_rmse < chosen->checkpoint_rmse) {
      chosen = s.cand;
      chosen_corr = s.corr;
    }
  }

  out.factor_fn = chosen->fn;
  out.factor_correlation = chosen_corr;
  // The factor winner is chosen here (by correlation), not inside the
  // enumeration, so the winner upgrade happens here too. Metrics-only
  // callers still get their winner counter bumped.
  audit_mark_winner(audit != nullptr ? &audit->factor : nullptr,
                    extrap.metrics, *chosen, input.cores, factor_meas);

  // The factor (seconds per stalled-cycle-per-core) is a slowly varying
  // link between two quantities that already carry the scaling trend, so
  // its extrapolation is clamped to a modest envelope around the measured
  // range: tail swings of the fitted function must not multiply the stall
  // extrapolation's own trend.
  double fmin = factor_meas[0], fmax = factor_meas[0];
  for (double f : factor_meas) {
    fmin = std::min(fmin, f);
    fmax = std::max(fmax, f);
  }
  const double f_lo = 0.5 * fmin;
  const double f_hi = 1.5 * fmax;

  out.time_s.resize(cfg.target_cores.size());
  for (std::size_t i = 0; i < cfg.target_cores.size(); ++i) {
    const double f = std::clamp(
        out.factor_fn(static_cast<double>(cfg.target_cores[i])), f_lo, f_hi);
    out.time_s[i] = f * out.stalls_per_core[i];
  }
  return out;
}

Prediction predict_time_extrapolation(const MeasurementSet& ms,
                                      const PredictionConfig& cfg) {
  ms.validate();
  if (cfg.target_cores.empty()) {
    throw std::invalid_argument("time extrapolation: no target core counts");
  }
  const ExtrapolationConfig extrap = tuned_extrap(cfg, cfg.extrap.pool);

  Prediction out;
  out.cores = cfg.target_cores;
  out.freq_scale = compute_freq_scale(ms, cfg);

  std::vector<double> scaled_time(ms.time_s);
  for (double& t : scaled_time) t *= out.freq_scale;

  EnumerationStats time_stats;
  auto ext = extrapolate_series(ms.cores, scaled_time, extrap, &time_stats);
  raise_if_abandoned(time_stats, "time extrapolation");
  if (!ext) {
    throw std::invalid_argument(
        "time extrapolation: no realistic fit for the time series");
  }
  out.factor_fn = ext->best;
  out.time_s = ext->predict(cfg.target_cores);
  for (double& t : out.time_s) t *= cfg.dataset_scale;
  out.stalls_per_core.assign(cfg.target_cores.size(), 0.0);
  return out;
}

PredictionError evaluate_prediction(const Prediction& pred,
                                    const MeasurementSet& truth,
                                    int skip_below_cores) {
  PredictionError err;
  std::vector<int> common_cores;
  std::vector<double> p, t;
  for (std::size_t i = 0; i < pred.cores.size(); ++i) {
    if (pred.cores[i] < skip_below_cores) continue;
    for (std::size_t j = 0; j < truth.cores.size(); ++j) {
      if (truth.cores[j] == pred.cores[i]) {
        common_cores.push_back(pred.cores[i]);
        p.push_back(pred.time_s[i]);
        t.push_back(truth.time_s[j]);
        break;
      }
    }
  }
  err.compared_points = static_cast<int>(common_cores.size());
  if (common_cores.empty()) return err;

  err.max_pct = numeric::max_relative_error_pct(p, t);
  err.mean_pct = numeric::mean_relative_error_pct(p, t);
  err.predicted_best_cores = argmin_cores(common_cores, p);
  err.actual_best_cores = argmin_cores(common_cores, t);
  // The paper's robustness claim has two parts: ESTIMA never predicts that
  // an application scales when it does not (and vice versa), and it
  // identifies the core count where scaling stops. We count the verdict as
  // matching when the scale/no-scale classification agrees, or when both
  // stop and the predicted stop point is within a quarter of the range of
  // the actual one (identifying "roughly where" scaling stops).
  const bool same_class =
      scales_to_end(common_cores, p) == scales_to_end(common_cores, t);
  const int range = common_cores.back();
  const bool close_stop =
      4 * std::abs(err.predicted_best_cores - err.actual_best_cores) <= range;
  err.scaling_verdict_match = same_class || close_stop;
  return err;
}

std::uint64_t config_signature(const PredictionConfig& cfg) {
  Fnv1a h;
  h.u64(cfg.target_cores.size());
  for (int c : cfg.target_cores) h.i64(c);
  h.f64(cfg.target_freq_ghz);
  h.f64(cfg.dataset_scale);
  h.boolean(cfg.use_software_stalls);
  h.boolean(cfg.include_frontend);
  h.boolean(cfg.aggregate_mode);
  const ExtrapolationConfig& e = cfg.extrap;
  h.u64(e.checkpoint_counts.size());
  for (int c : e.checkpoint_counts) h.i64(c);
  h.i64(e.min_prefix);
  h.f64(e.target_max_cores);
  h.f64(e.realism.range_min);
  h.f64(e.realism.range_max);
  h.f64(e.realism.explosion_factor);
  h.boolean(e.realism.require_nonnegative);
  h.f64(e.realism.negativity_slack);
  h.i64(e.realism.max_steps);
  h.f64(e.fit.ridge_lambda);
  h.i64(e.fit.levmar_max_iterations);
  // e.memoize_fits, e.engine, e.pool, e.deadline, e.trace, e.audit,
  // e.metrics and e.memo deliberately excluded:
  // the *answer* (times, stalls, chosen fits) is bit-identical across all
  // of them — a deadline can only turn an answer into an exception, a
  // trace only observes where the time went, and the batched fit engine
  // restructures the work without changing the arithmetic — so
  // cached results stay shareable. Only the work-accounting fields (factor_stats, the
  // per-category fits_executed / duplicate_fits_eliminated) reflect the
  // run that actually computed the prediction — accounting describes the
  // computation, not the campaign, and is outside the identity contract.
  return h.value();
}

std::vector<int> cores_up_to(int max_cores) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(std::max(max_cores, 0)));
  for (int i = 1; i <= max_cores; ++i) out.push_back(i);
  return out;
}

}  // namespace estima::core
