// Cooperative request deadlines.
//
// A Deadline is created where a latency budget is known (the HTTP edge's
// per-request 408 budget, or an X-Estima-Deadline-Ms header) and threaded
// by pointer down through PredictionService into the enumeration fit loop,
// which polls expired() between fits. Expiry is observational — nothing is
// interrupted — so workers stop at the next fit boundary, typically well
// under a millisecond of extra work.
//
// The object is lock-free and safe to share across threads: the edge's
// event loop may cancel() it (client timed out or hung up) while a handler
// thread polls expired() and the router tighten()s it from a header.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace estima::core {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: never expires unless cancel()ed or tighten()ed.
  Deadline() = default;

  /// Expires at the given absolute time.
  explicit Deadline(Clock::time_point at) : tp_ns_(ns_of(at)) {}

  /// Expires `budget` from now.
  static Deadline after(std::chrono::milliseconds budget) {
    return Deadline(Clock::now() + budget);
  }

  // Shared across threads by pointer; copying would silently fork the
  // cancellation channel.
  Deadline(const Deadline&) = delete;
  Deadline& operator=(const Deadline&) = delete;

  /// Moves the expiry earlier, to `from_now` out; never extends it.
  void tighten(std::chrono::milliseconds from_now) {
    const std::int64_t cand = ns_of(Clock::now() + from_now);
    std::int64_t cur = tp_ns_.load(std::memory_order_relaxed);
    while (cand < cur && !tp_ns_.compare_exchange_weak(
                             cur, cand, std::memory_order_relaxed)) {
    }
  }

  /// Expires the deadline immediately (e.g. the client hung up).
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// True once the budget has run out or cancel() was called.
  bool expired() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    const std::int64_t t = tp_ns_.load(std::memory_order_relaxed);
    return t != kUnlimited && ns_of(Clock::now()) >= t;
  }

  /// True when a finite expiry has been set.
  bool limited() const {
    return tp_ns_.load(std::memory_order_relaxed) != kUnlimited;
  }

 private:
  static constexpr std::int64_t kUnlimited =
      std::numeric_limits<std::int64_t>::max();

  static std::int64_t ns_of(Clock::time_point tp) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               tp.time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> tp_ns_{kUnlimited};
};

/// Thrown (from serial code only — never across a parallel_for job
/// boundary) when a computation observes its deadline expired. The HTTP
/// layer maps it to 408.
struct DeadlineExceeded : std::runtime_error {
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace estima::core
