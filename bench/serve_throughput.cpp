// Serving-layer throughput benchmark: campaigns/sec cold vs warm-cache.
//
// The production question the serving subsystem answers: how many
// (workload, machine) campaigns per second can the repo serve when the
// same campaigns come back again and again (dashboards, capacity
// planners, CI fleets re-asking about the same builds)? Three rates are
// measured:
//   serial     — one core::predict() per campaign, no service (the cold
//                single-campaign reference every speedup is quoted
//                against);
//   cold batch — PredictionService::predict_many() on an empty cache
//                (batch dedup + pool fan-out, every unique computed);
//   warm batch — predict_many() again on the now-populated cache.
// The second pass must be served 100% from the cache with results
// bit-identical to the serial reference; the bench exits non-zero when
// either invariant (or the >= 10x warm speedup bar) fails.
//
// Streaming mode (on by default, --streaming=0 disables): the
// append-point workflow. One campaign is measured one core count at a
// time past its initial points; after each append the series is
// re-predicted twice — cold (fresh predict(), the old full recompute)
// and incrementally (a persistent core::FitMemo carried across steps, as
// the campaign store does). The incremental path must be bit-identical
// to cold at every step and >= 3x faster over the whole append sequence
// (CI-gated); the bench exits non-zero when either fails.
//
// Reports JSON to BENCH_serve_throughput.json (and text to stdout).
//
// Flags:
//   --campaigns=C   distinct campaigns                (default 8)
//   --repeat=R      copies of each campaign per batch (default 4)
//   --threads=N     pool size                         (default: hardware)
//   --points=M      measured core counts 1..M         (default 12)
//   --target=T      extrapolation horizon             (default 48)
//   --warm-seconds=S  minimum warm measurement window (default 0.5)
//   --streaming=0|1 run the streaming section         (default 1)
//   --appends=A     points appended one at a time     (default 6)
//   --out=PATH      JSON output path (default BENCH_serve_throughput.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/fit_memo.hpp"
#include "core/predictor.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "service/prediction_service.hpp"
#include "tests/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using estima::bench::bit_identical;
using estima::bench::parse_flag_d;
using estima::bench::parse_flag_s;

estima::core::MeasurementSet make_campaign(int seed, int points) {
  estima::testing::SyntheticSpec spec;
  spec.mem_rate = 0.25 + 0.02 * (seed % 7);
  spec.serial_frac = 0.005 + 0.0015 * (seed % 5);
  spec.stm_rate = seed % 2 ? 1e-4 : 0.0;
  spec.noise = 0.02;
  return estima::testing::make_synthetic(
      spec, estima::testing::counts_up_to(points),
      ("serve-campaign-" + std::to_string(seed)).c_str());
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int run_bench(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_bench(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_throughput: %s\n", e.what());
    return 1;
  }
}

int run_bench(int argc, char** argv) {
  const int campaigns =
      static_cast<int>(parse_flag_d(argc, argv, "campaigns", 8));
  const int repeat = static_cast<int>(parse_flag_d(argc, argv, "repeat", 4));
  const int points = static_cast<int>(parse_flag_d(argc, argv, "points", 12));
  const int target = static_cast<int>(parse_flag_d(argc, argv, "target", 48));
  const double warm_seconds =
      parse_flag_d(argc, argv, "warm-seconds", 0.5);
  const bool streaming = parse_flag_d(argc, argv, "streaming", 1) != 0;
  const int appends = static_cast<int>(parse_flag_d(argc, argv, "appends", 6));
  const int threads = static_cast<int>(parse_flag_d(
      argc, argv, "threads",
      static_cast<double>(estima::parallel::ThreadPool::hardware_threads())));
  const std::string out_path =
      parse_flag_s(argc, argv, "out", "BENCH_serve_throughput.json");

  // The request stream: C distinct campaigns, each appearing R times per
  // batch, interleaved the way independent clients would submit them.
  std::vector<estima::core::MeasurementSet> uniques;
  for (int i = 0; i < campaigns; ++i) uniques.push_back(make_campaign(i, points));
  std::vector<estima::core::MeasurementSet> batch;
  for (int r = 0; r < repeat; ++r) {
    for (const auto& u : uniques) batch.push_back(u);
  }

  estima::core::PredictionConfig cfg;
  cfg.target_cores = estima::core::cores_up_to(target);

  std::printf("serve_throughput: %d campaigns x%d per batch, horizon %d, "
              "%d pool threads\n",
              campaigns, repeat, target, threads);

  // Serial reference: cold single-campaign throughput and the
  // bit-identity baseline.
  std::vector<estima::core::Prediction> serial;
  const auto serial_start = Clock::now();
  for (const auto& u : uniques) serial.push_back(estima::core::predict(u, cfg));
  const double serial_elapsed = seconds_since(serial_start);
  const double serial_cps = campaigns / serial_elapsed;

  estima::parallel::ThreadPool pool(
      static_cast<std::size_t>(threads > 0 ? threads : 1));
  estima::service::ServiceConfig scfg;
  scfg.prediction = cfg;
  // Capacity is split across the cache's 16 shards and keys can skew, so
  // leave enough headroom that even every campaign landing in one shard
  // (per-shard capacity = total/16) cannot evict a live entry — the
  // warm-pass 100% hit-rate gate must only ever fail for real bugs.
  scfg.cache_capacity = static_cast<std::size_t>(64 * campaigns);
  estima::service::PredictionService service(scfg, &pool);

  // Cold batch: empty cache, every unique computed once, repeats folded.
  const auto cold_start = Clock::now();
  const auto cold_out = service.predict_many(batch);
  const double cold_elapsed = seconds_since(cold_start);
  const double cold_cps = static_cast<double>(batch.size()) / cold_elapsed;
  const auto after_cold = service.stats();

  // Warm passes: loop whole batches until the window is long enough to
  // time the cache path honestly. The first warm pass supplies the
  // second-pass hit-rate figure.
  int warm_batches = 0;
  std::size_t warm_campaigns_served = 0;
  std::vector<estima::core::Prediction> warm_out;
  const auto warm_start = Clock::now();
  double warm_elapsed = 0.0;
  for (;;) {
    warm_out = service.predict_many(batch);
    ++warm_batches;
    warm_campaigns_served += batch.size();
    warm_elapsed = seconds_since(warm_start);
    if (warm_elapsed >= warm_seconds && warm_batches >= 2) break;
  }
  const double warm_cps = warm_campaigns_served / warm_elapsed;
  const auto after_warm = service.stats();

  // Invariants. Second pass = the first warm batch: its unique lookups
  // must all be hits and must add no computation.
  const std::uint64_t warm_hits = after_warm.cache.hits - after_cold.cache.hits;
  const std::uint64_t warm_misses =
      after_warm.cache.misses - after_cold.cache.misses;
  const double second_pass_hit_rate =
      warm_hits > 0 || warm_misses > 0
          ? static_cast<double>(warm_hits) /
                static_cast<double>(warm_hits + warm_misses)
          : 0.0;
  const bool no_new_compute =
      after_warm.predictions_computed == after_cold.predictions_computed;

  bool identical = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& want = serial[i % static_cast<std::size_t>(campaigns)];
    if (!bit_identical(cold_out[i], want) ||
        !bit_identical(warm_out[i], want)) {
      identical = false;
      break;
    }
  }

  const double warm_speedup = warm_cps / serial_cps;
  const bool speedup_ok = warm_speedup >= 10.0;
  const bool hit_rate_ok = second_pass_hit_rate == 1.0 && no_new_compute;

  // Per-campaign latency percentiles on the warm path (pure cache hits).
  estima::bench::LatencyRecorder warm_lat;
  {
    const auto start = Clock::now();
    while (seconds_since(start) < std::max(0.1, warm_seconds / 4.0)) {
      for (const auto& u : uniques) {
        const auto op_start = Clock::now();
        (void)service.predict_one(u);
        warm_lat.record(op_start, Clock::now());
      }
    }
  }

  // Observability overhead at request granularity: one TraceContext per
  // warm batch — exactly what one traced HTTP request pays (context
  // creation, cache.lookup spans, histogram records, finish) — against
  // the identical untraced call. Traced and untraced batches strictly
  // alternate inside ONE window, so scheduler stalls and frequency
  // wander land on both sides alike, and each side's per-batch times are
  // tail-trimmed before comparing means: a single preempted batch must
  // not masquerade as tracing cost.
  estima::obs::Registry registry;
  estima::obs::TracerConfig tcfg;
  tcfg.slow_threshold_ms = -1;  // measuring span cost, not collecting slow
  estima::obs::Tracer tracer(registry, tcfg);
  std::vector<double> untraced_ns, traced_ns;
  {
    const double window_s = std::max(0.3, warm_seconds);
    const auto start = Clock::now();
    while (seconds_since(start) < window_s) {
      const auto u0 = Clock::now();
      (void)service.predict_many(batch);
      const auto u1 = Clock::now();
      untraced_ns.push_back(
          std::chrono::duration<double, std::nano>(u1 - u0).count());
      const auto t0 = Clock::now();
      estima::obs::TraceContext tctx(&tracer, tracer.generate_id(), t0);
      (void)service.predict_many(batch, nullptr, &tctx);
      const auto t1 = Clock::now();
      tracer.finish(tctx, t1);
      traced_ns.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
  }
  const auto trimmed_mean = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    const std::size_t keep = std::max<std::size_t>(1, v.size() * 9 / 10);
    double sum = 0.0;
    for (std::size_t i = 0; i < keep; ++i) sum += v[i];
    return sum / static_cast<double>(keep);
  };
  const double untraced_batch_ns = trimmed_mean(untraced_ns);
  const double traced_batch_ns = trimmed_mean(traced_ns);
  const double untraced_cps =
      static_cast<double>(batch.size()) * 1e9 / untraced_batch_ns;
  const double traced_cps =
      static_cast<double>(batch.size()) * 1e9 / traced_batch_ns;
  const double obs_overhead_pct =
      100.0 * (traced_batch_ns - untraced_batch_ns) / untraced_batch_ns;

  // Streaming: the append-point workflow the campaign store serves. A
  // campaign measured out to points+appends core counts arrives one
  // point at a time; each arrival is re-predicted cold (fresh predict())
  // and incrementally (one FitMemo persisting across the whole stream,
  // exactly how CampaignStore carries it). Both run serially — the
  // comparison is fit work avoided, not pool scheduling. The memo is
  // pre-seeded by predicting the initial series once (untimed): that is
  // the PUT that created the campaign.
  double stream_cold_s = 0.0;
  double stream_incr_s = 0.0;
  std::uint64_t stream_memo_hits = 0;
  bool stream_identical = true;
  double stream_speedup = 0.0;
  bool stream_ok = true;
  if (streaming) {
    const auto full = make_campaign(0, points + appends);
    estima::core::FitMemo memo;
    (void)estima::core::predict(full.truncated(points), cfg, nullptr,
                                nullptr, nullptr, nullptr, &memo);
    for (int a = 1; a <= appends; ++a) {
      const auto ms = full.truncated(static_cast<std::size_t>(points + a));
      const auto c0 = Clock::now();
      const auto cold = estima::core::predict(ms, cfg);
      stream_cold_s += seconds_since(c0);
      const auto i0 = Clock::now();
      const auto incr = estima::core::predict(ms, cfg, nullptr, nullptr,
                                              nullptr, nullptr, &memo);
      stream_incr_s += seconds_since(i0);
      if (!bit_identical(cold, incr)) stream_identical = false;
    }
    stream_memo_hits = memo.stats().hits;
    stream_speedup = stream_cold_s / stream_incr_s;
    stream_ok = stream_identical && stream_speedup >= 3.0;
  }

  std::printf("  serial predict   %10.2f campaigns/s  (%d campaigns in %.3fs)\n",
              serial_cps, campaigns, serial_elapsed);
  std::printf("  cold  batch      %10.2f campaigns/s  (%zu campaigns in %.3fs)\n",
              cold_cps, batch.size(), cold_elapsed);
  std::printf("  warm  batch      %10.2f campaigns/s  (%zu campaigns in %.3fs)\n",
              warm_cps, warm_campaigns_served, warm_elapsed);
  std::printf("  warm vs cold-serial speedup: %.1fx (bar: >= 10x)\n",
              warm_speedup);
  std::printf("  second-pass hit rate: %.0f%%, no new compute: %s\n",
              100.0 * second_pass_hit_rate, no_new_compute ? "yes" : "NO");
  std::printf("  bit-identical to serial predict(): %s\n",
              identical ? "yes" : "NO");
  std::printf("  warm traced vs untraced: untraced %10.2f/s  traced "
              "%10.2f/s  obs overhead %.2f%%\n",
              untraced_cps, traced_cps, obs_overhead_pct);
  {
    const auto ls = warm_lat.stats();
    std::printf("  warm latency: p50 %.4fms p90 %.4fms p99 %.4fms "
                "p999 %.4fms\n",
                ls.p50_ms, ls.p90_ms, ls.p99_ms, ls.p999_ms);
  }
  if (streaming) {
    std::printf("  streaming: %d appends, cold %.3fs vs incremental %.3fs "
                "-> %.1fx (bar: >= 3x), memo hits %llu, bit-identical: %s\n",
                appends, stream_cold_s, stream_incr_s, stream_speedup,
                static_cast<unsigned long long>(stream_memo_hits),
                stream_identical ? "yes" : "NO");
  }
  std::printf("  service: computed=%llu folded=%llu joins=%llu "
              "hits=%llu misses=%llu evictions=%llu\n",
              static_cast<unsigned long long>(after_warm.predictions_computed),
              static_cast<unsigned long long>(
                  after_warm.batch_duplicates_folded),
              static_cast<unsigned long long>(after_warm.inflight_joins),
              static_cast<unsigned long long>(after_warm.cache.hits),
              static_cast<unsigned long long>(after_warm.cache.misses),
              static_cast<unsigned long long>(after_warm.cache.evictions));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  estima::obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "serve_throughput");
  w.kv("campaigns", campaigns);
  w.kv("repeat_per_batch", repeat);
  w.kv("measured_points", points);
  w.kv("target_cores", target);
  w.kv("pool_threads", threads);
  w.kv("serial_campaigns_per_sec", serial_cps, 3);
  w.kv("cold_batch_campaigns_per_sec", cold_cps, 3);
  w.kv("warm_batch_campaigns_per_sec", warm_cps, 3);
  w.kv("warm_speedup_vs_cold_serial", warm_speedup, 3);
  w.kv("second_pass_hit_rate", second_pass_hit_rate, 4);
  w.kv("predictions_computed", after_warm.predictions_computed);
  w.kv("batch_duplicates_folded", after_warm.batch_duplicates_folded);
  w.kv("cache_hits", after_warm.cache.hits);
  w.kv("cache_misses", after_warm.cache.misses);
  w.kv("cache_evictions", after_warm.cache.evictions);
  w.kv("untraced_warm_campaigns_per_sec", untraced_cps, 3);
  w.kv("traced_warm_campaigns_per_sec", traced_cps, 3);
  w.kv("obs_overhead_pct", obs_overhead_pct, 2);
  estima::bench::write_latency_json(w, "warm_latency", warm_lat);
  w.kv("bit_identical_to_serial", identical);
  w.kv("speedup_bar_met", speedup_ok);
  if (streaming) {
    w.kv("streaming_appends", appends);
    w.kv("streaming_cold_s", stream_cold_s, 4);
    w.kv("streaming_incremental_s", stream_incr_s, 4);
    w.kv("streaming_speedup", stream_speedup, 3);
    w.kv("streaming_memo_hits", stream_memo_hits);
    w.kv("streaming_bit_identical", stream_identical);
    w.kv("streaming_bar_met", stream_ok);
  }
  w.end_object();
  std::fputs(w.str().c_str(), f);
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());

  return (identical && hit_rate_ok && speedup_ok && stream_ok) ? 0 : 2;
}
