// Serving-layer throughput benchmark: campaigns/sec cold vs warm-cache.
//
// The production question the serving subsystem answers: how many
// (workload, machine) campaigns per second can the repo serve when the
// same campaigns come back again and again (dashboards, capacity
// planners, CI fleets re-asking about the same builds)? Three rates are
// measured:
//   serial     — one core::predict() per campaign, no service (the cold
//                single-campaign reference every speedup is quoted
//                against);
//   cold batch — PredictionService::predict_many() on an empty cache
//                (batch dedup + pool fan-out, every unique computed);
//   warm batch — predict_many() again on the now-populated cache.
// The second pass must be served 100% from the cache with results
// bit-identical to the serial reference; the bench exits non-zero when
// either invariant (or the >= 10x warm speedup bar) fails.
//
// Reports JSON to BENCH_serve_throughput.json (and text to stdout).
//
// Flags:
//   --campaigns=C   distinct campaigns                (default 8)
//   --repeat=R      copies of each campaign per batch (default 4)
//   --threads=N     pool size                         (default: hardware)
//   --points=M      measured core counts 1..M         (default 12)
//   --target=T      extrapolation horizon             (default 48)
//   --warm-seconds=S  minimum warm measurement window (default 0.5)
//   --out=PATH      JSON output path (default BENCH_serve_throughput.json)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/predictor.hpp"
#include "parallel/thread_pool.hpp"
#include "service/prediction_service.hpp"
#include "tests/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using estima::bench::bit_identical;
using estima::bench::parse_flag_d;
using estima::bench::parse_flag_s;

estima::core::MeasurementSet make_campaign(int seed, int points) {
  estima::testing::SyntheticSpec spec;
  spec.mem_rate = 0.25 + 0.02 * (seed % 7);
  spec.serial_frac = 0.005 + 0.0015 * (seed % 5);
  spec.stm_rate = seed % 2 ? 1e-4 : 0.0;
  spec.noise = 0.02;
  return estima::testing::make_synthetic(
      spec, estima::testing::counts_up_to(points),
      ("serve-campaign-" + std::to_string(seed)).c_str());
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int run_bench(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_bench(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_throughput: %s\n", e.what());
    return 1;
  }
}

int run_bench(int argc, char** argv) {
  const int campaigns =
      static_cast<int>(parse_flag_d(argc, argv, "campaigns", 8));
  const int repeat = static_cast<int>(parse_flag_d(argc, argv, "repeat", 4));
  const int points = static_cast<int>(parse_flag_d(argc, argv, "points", 12));
  const int target = static_cast<int>(parse_flag_d(argc, argv, "target", 48));
  const double warm_seconds =
      parse_flag_d(argc, argv, "warm-seconds", 0.5);
  const int threads = static_cast<int>(parse_flag_d(
      argc, argv, "threads",
      static_cast<double>(estima::parallel::ThreadPool::hardware_threads())));
  const std::string out_path =
      parse_flag_s(argc, argv, "out", "BENCH_serve_throughput.json");

  // The request stream: C distinct campaigns, each appearing R times per
  // batch, interleaved the way independent clients would submit them.
  std::vector<estima::core::MeasurementSet> uniques;
  for (int i = 0; i < campaigns; ++i) uniques.push_back(make_campaign(i, points));
  std::vector<estima::core::MeasurementSet> batch;
  for (int r = 0; r < repeat; ++r) {
    for (const auto& u : uniques) batch.push_back(u);
  }

  estima::core::PredictionConfig cfg;
  cfg.target_cores = estima::core::cores_up_to(target);

  std::printf("serve_throughput: %d campaigns x%d per batch, horizon %d, "
              "%d pool threads\n",
              campaigns, repeat, target, threads);

  // Serial reference: cold single-campaign throughput and the
  // bit-identity baseline.
  std::vector<estima::core::Prediction> serial;
  const auto serial_start = Clock::now();
  for (const auto& u : uniques) serial.push_back(estima::core::predict(u, cfg));
  const double serial_elapsed = seconds_since(serial_start);
  const double serial_cps = campaigns / serial_elapsed;

  estima::parallel::ThreadPool pool(
      static_cast<std::size_t>(threads > 0 ? threads : 1));
  estima::service::ServiceConfig scfg;
  scfg.prediction = cfg;
  // Capacity is split across the cache's 16 shards and keys can skew, so
  // leave enough headroom that even every campaign landing in one shard
  // (per-shard capacity = total/16) cannot evict a live entry — the
  // warm-pass 100% hit-rate gate must only ever fail for real bugs.
  scfg.cache_capacity = static_cast<std::size_t>(64 * campaigns);
  estima::service::PredictionService service(scfg, &pool);

  // Cold batch: empty cache, every unique computed once, repeats folded.
  const auto cold_start = Clock::now();
  const auto cold_out = service.predict_many(batch);
  const double cold_elapsed = seconds_since(cold_start);
  const double cold_cps = static_cast<double>(batch.size()) / cold_elapsed;
  const auto after_cold = service.stats();

  // Warm passes: loop whole batches until the window is long enough to
  // time the cache path honestly. The first warm pass supplies the
  // second-pass hit-rate figure.
  int warm_batches = 0;
  std::size_t warm_campaigns_served = 0;
  std::vector<estima::core::Prediction> warm_out;
  const auto warm_start = Clock::now();
  double warm_elapsed = 0.0;
  for (;;) {
    warm_out = service.predict_many(batch);
    ++warm_batches;
    warm_campaigns_served += batch.size();
    warm_elapsed = seconds_since(warm_start);
    if (warm_elapsed >= warm_seconds && warm_batches >= 2) break;
  }
  const double warm_cps = warm_campaigns_served / warm_elapsed;
  const auto after_warm = service.stats();

  // Invariants. Second pass = the first warm batch: its unique lookups
  // must all be hits and must add no computation.
  const std::uint64_t warm_hits = after_warm.cache.hits - after_cold.cache.hits;
  const std::uint64_t warm_misses =
      after_warm.cache.misses - after_cold.cache.misses;
  const double second_pass_hit_rate =
      warm_hits > 0 || warm_misses > 0
          ? static_cast<double>(warm_hits) /
                static_cast<double>(warm_hits + warm_misses)
          : 0.0;
  const bool no_new_compute =
      after_warm.predictions_computed == after_cold.predictions_computed;

  bool identical = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& want = serial[i % static_cast<std::size_t>(campaigns)];
    if (!bit_identical(cold_out[i], want) ||
        !bit_identical(warm_out[i], want)) {
      identical = false;
      break;
    }
  }

  const double warm_speedup = warm_cps / serial_cps;
  const bool speedup_ok = warm_speedup >= 10.0;
  const bool hit_rate_ok = second_pass_hit_rate == 1.0 && no_new_compute;

  std::printf("  serial predict   %10.2f campaigns/s  (%d campaigns in %.3fs)\n",
              serial_cps, campaigns, serial_elapsed);
  std::printf("  cold  batch      %10.2f campaigns/s  (%zu campaigns in %.3fs)\n",
              cold_cps, batch.size(), cold_elapsed);
  std::printf("  warm  batch      %10.2f campaigns/s  (%zu campaigns in %.3fs)\n",
              warm_cps, warm_campaigns_served, warm_elapsed);
  std::printf("  warm vs cold-serial speedup: %.1fx (bar: >= 10x)\n",
              warm_speedup);
  std::printf("  second-pass hit rate: %.0f%%, no new compute: %s\n",
              100.0 * second_pass_hit_rate, no_new_compute ? "yes" : "NO");
  std::printf("  bit-identical to serial predict(): %s\n",
              identical ? "yes" : "NO");
  std::printf("  service: computed=%llu folded=%llu joins=%llu "
              "hits=%llu misses=%llu evictions=%llu\n",
              static_cast<unsigned long long>(after_warm.predictions_computed),
              static_cast<unsigned long long>(
                  after_warm.batch_duplicates_folded),
              static_cast<unsigned long long>(after_warm.inflight_joins),
              static_cast<unsigned long long>(after_warm.cache.hits),
              static_cast<unsigned long long>(after_warm.cache.misses),
              static_cast<unsigned long long>(after_warm.cache.evictions));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve_throughput\",\n");
  std::fprintf(f, "  \"campaigns\": %d,\n", campaigns);
  std::fprintf(f, "  \"repeat_per_batch\": %d,\n", repeat);
  std::fprintf(f, "  \"measured_points\": %d,\n", points);
  std::fprintf(f, "  \"target_cores\": %d,\n", target);
  std::fprintf(f, "  \"pool_threads\": %d,\n", threads);
  std::fprintf(f, "  \"serial_campaigns_per_sec\": %.3f,\n", serial_cps);
  std::fprintf(f, "  \"cold_batch_campaigns_per_sec\": %.3f,\n", cold_cps);
  std::fprintf(f, "  \"warm_batch_campaigns_per_sec\": %.3f,\n", warm_cps);
  std::fprintf(f, "  \"warm_speedup_vs_cold_serial\": %.3f,\n", warm_speedup);
  std::fprintf(f, "  \"second_pass_hit_rate\": %.4f,\n", second_pass_hit_rate);
  std::fprintf(f, "  \"predictions_computed\": %llu,\n",
               static_cast<unsigned long long>(
                   after_warm.predictions_computed));
  std::fprintf(f, "  \"batch_duplicates_folded\": %llu,\n",
               static_cast<unsigned long long>(
                   after_warm.batch_duplicates_folded));
  std::fprintf(f, "  \"cache_hits\": %llu,\n",
               static_cast<unsigned long long>(after_warm.cache.hits));
  std::fprintf(f, "  \"cache_misses\": %llu,\n",
               static_cast<unsigned long long>(after_warm.cache.misses));
  std::fprintf(f, "  \"cache_evictions\": %llu,\n",
               static_cast<unsigned long long>(after_warm.cache.evictions));
  std::fprintf(f, "  \"bit_identical_to_serial\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"speedup_bar_met\": %s\n", speedup_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());

  return (identical && hit_rate_ok && speedup_ok) ? 0 : 2;
}
