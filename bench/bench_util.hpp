// Shared helpers for the table/figure reproduction benches: compact table
// printing, flag parsing, bit-identity checks and common prediction
// plumbing.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/predictor.hpp"
#include "obs/histogram.hpp"
#include "obs/json_writer.hpp"
#include "simmachine/machine.hpp"
#include "simmachine/presets.hpp"
#include "simmachine/simulator.hpp"

namespace estima::bench {

/// Per-operation latency accounting for the throughput benches, built on
/// the same obs::Histogram the serving layer exposes: record one duration
/// per operation, read the quantiles at the end. The log-bucketed
/// histogram keeps recording O(1) and allocation-free, so calling it
/// inside a timed loop does not distort the loop it measures.
class LatencyRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  void record(Clock::time_point start, Clock::time_point end) {
    hist_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count()));
  }
  void record_ns(std::uint64_t ns) { hist_.record(ns); }

  struct Stats {
    std::uint64_t count = 0;
    double p50_ms = 0, p90_ms = 0, p99_ms = 0, p999_ms = 0, mean_ms = 0;
  };
  Stats stats() const {
    const obs::Histogram::Snapshot snap = hist_.snapshot();
    Stats s;
    s.count = snap.count;
    if (snap.count == 0) return s;
    s.p50_ms = static_cast<double>(snap.quantile(0.50)) / 1e6;
    s.p90_ms = static_cast<double>(snap.quantile(0.90)) / 1e6;
    s.p99_ms = static_cast<double>(snap.quantile(0.99)) / 1e6;
    s.p999_ms = static_cast<double>(snap.quantile(0.999)) / 1e6;
    s.mean_ms = static_cast<double>(snap.sum) /
                static_cast<double>(snap.count) / 1e6;
    return s;
  }

 private:
  obs::Histogram hist_;
};

/// Emits a LatencyRecorder's quantiles as a keyed object into an open
/// JSON object: "<key>": {"count":..., "p50_ms":..., ...}. Every
/// BENCH_*.json carries one of these per measured phase.
inline void write_latency_json(obs::JsonWriter& w, const std::string& key,
                               const LatencyRecorder& rec) {
  const LatencyRecorder::Stats s = rec.stats();
  w.begin_object(key);
  w.kv("count", s.count);
  w.kv("p50_ms", s.p50_ms, 4);
  w.kv("p90_ms", s.p90_ms, 4);
  w.kv("p99_ms", s.p99_ms, 4);
  w.kv("p999_ms", s.p999_ms, 4);
  w.kv("mean_ms", s.mean_ms, 4);
  w.end_object();
}

/// --name=value flag parsing shared by the throughput benches.
inline double parse_flag_d(int argc, char** argv, const char* name,
                           double dflt) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return dflt;
}

inline std::string parse_flag_s(int argc, char** argv, const char* name,
                                const std::string& dflt) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return dflt;
}

/// Bitwise equality of a Prediction's *answer* — everything the campaign
/// determines. The work-accounting fields (factor_stats, per-category
/// fits_executed / duplicate_fits_eliminated) are deliberately excluded:
/// they describe the computing run and legitimately differ between the
/// memoized and brute-force modes the benches compare. The throughput
/// benches exit non-zero on any mismatch, so this comparator is the
/// single place to extend when Prediction grows an answer field.
inline bool bit_identical(const core::Prediction& a,
                          const core::Prediction& b) {
  if (a.cores != b.cores) return false;
  if (a.time_s != b.time_s) return false;
  if (a.stalls_per_core != b.stalls_per_core) return false;
  if (a.freq_scale != b.freq_scale) return false;
  if (a.factor_fn.params != b.factor_fn.params) return false;
  if (a.factor_correlation != b.factor_correlation) return false;
  if (a.categories.size() != b.categories.size()) return false;
  for (std::size_t i = 0; i < a.categories.size(); ++i) {
    if (a.categories[i].values != b.categories[i].values) return false;
    if (a.categories[i].extrapolation.checkpoint_rmse !=
        b.categories[i].extrapolation.checkpoint_rmse) {
      return false;
    }
    if (a.categories[i].extrapolation.best.params !=
        b.categories[i].extrapolation.best.params) {
      return false;
    }
  }
  return true;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_series(const char* label, const std::vector<int>& cores,
                         const std::vector<double>& values) {
  std::printf("%-28s", label);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    std::printf(" %9.4g", values[i]);
  }
  std::printf("\n");
}

/// Subsamples a dense 1..N series at the given core counts for printing.
inline std::vector<double> at_cores(const std::vector<int>& all_cores,
                                    const std::vector<double>& values,
                                    const std::vector<int>& wanted) {
  std::vector<double> out;
  for (int w : wanted) {
    for (std::size_t i = 0; i < all_cores.size(); ++i) {
      if (all_cores[i] == w) {
        out.push_back(values[i]);
        break;
      }
    }
  }
  return out;
}

/// Standard experiment: simulate ground truth on `machine` for all cores,
/// measure the first `measure_cores`, predict to the full machine.
struct Experiment {
  core::MeasurementSet truth;      ///< full-machine simulation
  core::MeasurementSet measured;   ///< truncated to the measurement range
  core::Prediction estima;         ///< ESTIMA prediction
  core::Prediction time_extrap;    ///< baseline prediction
  core::PredictionError estima_err;
  core::PredictionError time_extrap_err;
};

inline Experiment run_experiment(const std::string& workload_name,
                                 const sim::MachineSpec& machine,
                                 int measure_cores,
                                 bool use_software = true,
                                 double dataset_scale = 1.0) {
  const auto wl = sim::presets::workload(workload_name);
  Experiment e;
  sim::SimOptions truth_opts;
  truth_opts.dataset_scale = dataset_scale;
  e.truth = sim::simulate(wl, machine, sim::all_core_counts(machine),
                          truth_opts);
  e.measured = e.truth.truncated(static_cast<std::size_t>(measure_cores));

  core::PredictionConfig cfg;
  cfg.target_cores = sim::all_core_counts(machine);
  cfg.use_software_stalls = use_software;
  cfg.dataset_scale = 1.0;  // measurement and truth share the dataset here
  e.estima = core::predict(e.measured, cfg);
  e.time_extrap = core::predict_time_extrapolation(e.measured, cfg);
  e.estima_err = core::evaluate_prediction(e.estima, e.truth);
  e.time_extrap_err = core::evaluate_prediction(e.time_extrap, e.truth);
  return e;
}

/// Cross-machine experiment (Section 4.3 / Table 7): measure on one
/// machine, predict and validate on another. Execution time is scaled by
/// the frequency ratio, exactly as the paper does.
inline Experiment run_cross_experiment(
    const std::string& workload_name, const sim::MachineSpec& measure_machine,
    const std::vector<int>& measure_counts,
    const sim::MachineSpec& target_machine, bool use_software = true,
    const core::ExtrapolationConfig* extrap_override = nullptr,
    double dataset_scale_target = 1.0) {
  const auto wl = sim::presets::workload(workload_name);
  Experiment e;
  e.measured = sim::simulate(wl, measure_machine, measure_counts);
  sim::SimOptions truth_opts;
  truth_opts.dataset_scale = dataset_scale_target;
  e.truth = sim::simulate(wl, target_machine,
                          sim::all_core_counts(target_machine), truth_opts);

  core::PredictionConfig cfg;
  cfg.target_cores = sim::all_core_counts(target_machine);
  cfg.target_freq_ghz = target_machine.freq_ghz;
  cfg.use_software_stalls = use_software;
  cfg.dataset_scale = dataset_scale_target;
  if (extrap_override) cfg.extrap = *extrap_override;
  e.estima = core::predict(e.measured, cfg);
  e.time_extrap = core::predict_time_extrapolation(e.measured, cfg);
  e.estima_err = core::evaluate_prediction(e.estima, e.truth);
  e.time_extrap_err = core::evaluate_prediction(e.time_extrap, e.truth);
  return e;
}

/// Workloads for which the paper also collects software stalls
/// (Section 5.3: the STAMP suite via SwissTM plus streamcluster, genome and
/// ssca2 via the pthread wrapper).
inline bool reports_software_stalls(const std::string& workload_name) {
  const auto wl = sim::presets::workload(workload_name);
  return wl.report_sw_stalls;
}

}  // namespace estima::bench
