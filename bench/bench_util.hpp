// Shared helpers for the table/figure reproduction benches: compact table
// printing and common prediction plumbing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/predictor.hpp"
#include "simmachine/machine.hpp"
#include "simmachine/presets.hpp"
#include "simmachine/simulator.hpp"

namespace estima::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_series(const char* label, const std::vector<int>& cores,
                         const std::vector<double>& values) {
  std::printf("%-28s", label);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    std::printf(" %9.4g", values[i]);
  }
  std::printf("\n");
}

/// Subsamples a dense 1..N series at the given core counts for printing.
inline std::vector<double> at_cores(const std::vector<int>& all_cores,
                                    const std::vector<double>& values,
                                    const std::vector<int>& wanted) {
  std::vector<double> out;
  for (int w : wanted) {
    for (std::size_t i = 0; i < all_cores.size(); ++i) {
      if (all_cores[i] == w) {
        out.push_back(values[i]);
        break;
      }
    }
  }
  return out;
}

/// Standard experiment: simulate ground truth on `machine` for all cores,
/// measure the first `measure_cores`, predict to the full machine.
struct Experiment {
  core::MeasurementSet truth;      ///< full-machine simulation
  core::MeasurementSet measured;   ///< truncated to the measurement range
  core::Prediction estima;         ///< ESTIMA prediction
  core::Prediction time_extrap;    ///< baseline prediction
  core::PredictionError estima_err;
  core::PredictionError time_extrap_err;
};

inline Experiment run_experiment(const std::string& workload_name,
                                 const sim::MachineSpec& machine,
                                 int measure_cores,
                                 bool use_software = true,
                                 double dataset_scale = 1.0) {
  const auto wl = sim::presets::workload(workload_name);
  Experiment e;
  sim::SimOptions truth_opts;
  truth_opts.dataset_scale = dataset_scale;
  e.truth = sim::simulate(wl, machine, sim::all_core_counts(machine),
                          truth_opts);
  e.measured = e.truth.truncated(static_cast<std::size_t>(measure_cores));

  core::PredictionConfig cfg;
  cfg.target_cores = sim::all_core_counts(machine);
  cfg.use_software_stalls = use_software;
  cfg.dataset_scale = 1.0;  // measurement and truth share the dataset here
  e.estima = core::predict(e.measured, cfg);
  e.time_extrap = core::predict_time_extrapolation(e.measured, cfg);
  e.estima_err = core::evaluate_prediction(e.estima, e.truth);
  e.time_extrap_err = core::evaluate_prediction(e.time_extrap, e.truth);
  return e;
}

/// Cross-machine experiment (Section 4.3 / Table 7): measure on one
/// machine, predict and validate on another. Execution time is scaled by
/// the frequency ratio, exactly as the paper does.
inline Experiment run_cross_experiment(
    const std::string& workload_name, const sim::MachineSpec& measure_machine,
    const std::vector<int>& measure_counts,
    const sim::MachineSpec& target_machine, bool use_software = true,
    const core::ExtrapolationConfig* extrap_override = nullptr,
    double dataset_scale_target = 1.0) {
  const auto wl = sim::presets::workload(workload_name);
  Experiment e;
  e.measured = sim::simulate(wl, measure_machine, measure_counts);
  sim::SimOptions truth_opts;
  truth_opts.dataset_scale = dataset_scale_target;
  e.truth = sim::simulate(wl, target_machine,
                          sim::all_core_counts(target_machine), truth_opts);

  core::PredictionConfig cfg;
  cfg.target_cores = sim::all_core_counts(target_machine);
  cfg.target_freq_ghz = target_machine.freq_ghz;
  cfg.use_software_stalls = use_software;
  cfg.dataset_scale = dataset_scale_target;
  if (extrap_override) cfg.extrap = *extrap_override;
  e.estima = core::predict(e.measured, cfg);
  e.time_extrap = core::predict_time_extrapolation(e.measured, cfg);
  e.estima_err = core::evaluate_prediction(e.estima, e.truth);
  e.time_extrap_err = core::evaluate_prediction(e.time_extrap, e.truth);
  return e;
}

/// Workloads for which the paper also collects software stalls
/// (Section 5.3: the STAMP suite via SwissTM plus streamcluster, genome and
/// ssca2 via the pthread wrapper).
inline bool reports_software_stalls(const std::string& workload_name) {
  const auto wl = sim::presets::workload(workload_name);
  return wl.report_sw_stalls;
}

}  // namespace estima::bench
