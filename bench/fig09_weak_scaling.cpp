// Figure 9: weak scaling (Section 4.5).
//
// genome and intruder are measured on one Xeon20 socket (10 cores) with the
// default dataset; ESTIMA predicts the full machine (20 cores) running a 2x
// dataset by scaling the extrapolated stall volumes. The paper reports max
// errors of 29% (genome) and 28% (intruder) excluding the single-core
// point, where the simple dataset scaling is least accurate.
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

int main() {
  bench::print_header(
      "Figure 9: weak scaling, Xeon20 one socket -> full machine + 2x data");
  const auto machine = sim::xeon20();
  const std::vector<int> marks = {1, 2, 4, 8, 10, 12, 16, 20};

  for (const char* name : {"genome", "intruder"}) {
    std::vector<int> counts;
    for (int i = 1; i <= 10; ++i) counts.push_back(i);
    auto e = bench::run_cross_experiment(name, machine, counts, machine,
                                         bench::reports_software_stalls(name),
                                         nullptr,
                                         /*dataset_scale_target=*/2.0);
    std::printf("\n--- %s (target dataset 2x) ---\n", name);
    std::printf("%-28s", "cores");
    for (int n : marks) std::printf(" %9d", n);
    std::printf("\n");
    bench::print_series("predicted time (s)", marks,
                        bench::at_cores(e.estima.cores, e.estima.time_s,
                                        marks));
    bench::print_series("measured 2x-dataset (s)", marks,
                        bench::at_cores(e.truth.cores, e.truth.time_s, marks));
    const auto err_all = core::evaluate_prediction(e.estima, e.truth);
    const auto err_no1 = core::evaluate_prediction(e.estima, e.truth,
                                                   /*skip_below_cores=*/2);
    std::printf("max err %.1f%% (all points), %.1f%% (excluding 1 core; "
                "paper: %s)\n",
                err_all.max_pct, err_no1.max_pct,
                std::string(name) == "genome" ? "29%" : "28%");
  }
  std::printf(
      "\npaper: single-core error is the largest -- the simple dataset\n"
      "scaling does not connect 1-core performance accurately.\n");
  return 0;
}
