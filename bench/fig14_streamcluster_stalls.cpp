// Figure 14: why streamcluster needs software stalls (Section 5.3).
//
// (a) execution time on the Opteron;
// (b) hardware-only stalls per core -- the futex-sleeping synchronisation
//     is invisible, correlation drops (paper: 0.86);
// (c) hardware+software stalls per core -- the wrapper-reported wait cycles
//     complete the picture (paper: 0.98).
#include <cstdio>

#include "bench_util.hpp"
#include "numeric/stats.hpp"

using namespace estima;

int main() {
  bench::print_header("Figure 14: streamcluster stall accounting (Opteron)");
  const auto m = sim::opteron48();
  const auto truth = sim::simulate(sim::presets::workload("streamcluster"), m,
                                   sim::all_core_counts(m));
  const auto spc_hw = truth.stalls_per_core(false, false);
  const auto spc_all = truth.stalls_per_core(false, true);

  const std::vector<int> marks = {1, 4, 8, 12, 16, 24, 32, 40, 48};
  std::printf("%-28s", "cores");
  for (int n : marks) std::printf(" %9d", n);
  std::printf("\n");
  bench::print_series("(a) execution time (s)", marks,
                      bench::at_cores(truth.cores, truth.time_s, marks));
  bench::print_series("(b) hw-only stalls/core", marks,
                      bench::at_cores(truth.cores, spc_hw, marks));
  bench::print_series("(c) hw+sw stalls/core", marks,
                      bench::at_cores(truth.cores, spc_all, marks));

  std::printf("\ncorrelation with time: hw-only %.2f (paper 0.86), "
              "hw+sw %.2f (paper 0.98)\n",
              numeric::pearson(spc_hw, truth.time_s),
              numeric::pearson(spc_all, truth.time_s));
  return 0;
}
