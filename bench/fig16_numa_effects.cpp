// Figure 16 + Section 5.5: capturing NUMA effects in the measurements.
//
// Xeon20 is a classic 2-socket NUMA machine: single-socket measurements
// (10 cores) miss the remote-access cliff and mispredict high core counts.
// Extending the measurement range past the socket boundary (12 / 14 cores)
// brings the NUMA trend into the data and improves accuracy.
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

int main() {
  bench::print_header(
      "Figure 16: measuring past the socket boundary on Xeon20");
  std::printf("%-16s %16s %16s %16s\n", "workload", "from 10 err%",
              "from 12 err%", "from 14 err%");
  for (const char* name : {"canneal", "lock-based-ht", "ssca2", "knn"}) {
    const bool sw = bench::reports_software_stalls(name);
    auto e10 = bench::run_experiment(name, sim::xeon20(), 10, sw);
    auto e12 = bench::run_experiment(name, sim::xeon20(), 12, sw);
    auto e14 = bench::run_experiment(name, sim::xeon20(), 14, sw);
    std::printf("%-16s %15.1f%% %15.1f%% %15.1f%%\n", name,
                e10.estima_err.max_pct, e12.estima_err.max_pct,
                e14.estima_err.max_pct);
  }
  std::printf(
      "\npaper: including cores from the second socket captures non-local\n"
      "accesses and improves prediction accuracy (Section 5.5).\n");
  return 0;
}
