// google-benchmark microbenchmarks for the numeric/fitting hot paths:
// kernel evaluation, single-kernel fits, the full checkpoint selection, the
// simulator, and an end-to-end prediction. These guard the tool's own
// performance (a full 21-workload campaign sweep runs thousands of fits).
#include <benchmark/benchmark.h>

#include "core/extrapolator.hpp"
#include "core/fit_engine.hpp"
#include "core/predictor.hpp"
#include "simmachine/machine.hpp"
#include "simmachine/presets.hpp"
#include "simmachine/simulator.hpp"

namespace {

using namespace estima;

std::vector<double> sample_xs(int m) {
  std::vector<double> xs;
  for (int i = 1; i <= m; ++i) xs.push_back(i);
  return xs;
}

std::vector<double> sample_ys(const std::vector<double>& xs) {
  std::vector<double> ys;
  for (double x : xs) ys.push_back(100.0 * x / (1.0 + 0.08 * x));
  return ys;
}

void BM_KernelEval(benchmark::State& state) {
  const auto type = core::kAllKernels[static_cast<std::size_t>(state.range(0))];
  std::vector<double> p(core::kernel_param_count(type), 0.01);
  p[0] = 1.0;
  double n = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::kernel_eval(type, n, p));
    n = n < 48.0 ? n + 1.0 : 1.0;
  }
}
BENCHMARK(BM_KernelEval)->DenseRange(0, 5);

void BM_FitKernel(benchmark::State& state) {
  const auto type = core::kAllKernels[static_cast<std::size_t>(state.range(0))];
  const auto xs = sample_xs(12);
  const auto ys = sample_ys(xs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fit_kernel(type, xs, ys));
  }
}
BENCHMARK(BM_FitKernel)->DenseRange(0, 5);

void BM_ExtrapolateSeries(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto xs = sample_xs(m);
  const auto ys = sample_ys(xs);
  std::vector<int> cores(xs.begin(), xs.end());
  core::ExtrapolationConfig cfg;
  cfg.target_max_cores = 48;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extrapolate_series(cores, ys, cfg));
  }
}
BENCHMARK(BM_ExtrapolateSeries)->Arg(8)->Arg(12)->Arg(20);

void BM_SimulateCampaign(benchmark::State& state) {
  const auto wl = sim::presets::workload("intruder");
  const auto m = sim::opteron48();
  const auto cores = sim::all_core_counts(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(wl, m, cores));
  }
}
BENCHMARK(BM_SimulateCampaign);

void BM_FullPrediction(benchmark::State& state) {
  const auto wl = sim::presets::workload("intruder");
  const auto machine = sim::opteron48();
  const auto measured =
      sim::simulate(wl, machine, sim::all_core_counts(machine)).truncated(12);
  core::PredictionConfig cfg;
  cfg.target_cores = sim::all_core_counts(machine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::predict(measured, cfg));
  }
}
BENCHMARK(BM_FullPrediction);

}  // namespace

BENCHMARK_MAIN();
