// Table 7: cross-machine predictions targeting the Xeon48 (Section 5.5).
//
// Measuring on *both* sockets of Xeon20 (NUMA effects in the data) and
// predicting the 4-socket, 48-core Xeon48 (2.4x the cores, lower clock):
// the paper's average error falls from 17.7% (single-socket predictions of
// Table 4) to 13.9%, the standard deviation from 11.0 to 6.5, and the max
// from 41.7% to 30%.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

int main() {
  bench::print_header("Table 7: Xeon20 (both sockets) -> Xeon48 predictions");
  std::printf("%-18s %18s %22s\n", "benchmark", "Xeon20 2CPU err%",
              "Xeon20 -> Xeon48 err%");

  std::vector<double> base_errs, cross_errs;
  for (const auto& name : sim::presets::benchmark_workload_names()) {
    const bool sw = bench::reports_software_stalls(name);
    // Baseline: Table 4's one-socket prediction of the full Xeon20.
    auto base = bench::run_experiment(name, sim::xeon20(), 10, sw);
    // Cross-machine: all 20 Xeon20 cores -> 48-core Xeon48.
    std::vector<int> counts;
    for (int i = 1; i <= 20; ++i) counts.push_back(i);
    auto cross = bench::run_cross_experiment(name, sim::xeon20(), counts,
                                             sim::xeon48(), sw);
    std::printf("%-18s %17.1f%% %21.1f%%\n", name.c_str(),
                base.estima_err.max_pct, cross.estima_err.max_pct);
    base_errs.push_back(base.estima_err.max_pct);
    cross_errs.push_back(cross.estima_err.max_pct);
  }

  const auto stats = [](const std::vector<double>& v) {
    double sum = 0, sum2 = 0, mx = 0;
    for (double x : v) {
      sum += x;
      sum2 += x * x;
      mx = std::max(mx, x);
    }
    const double n = static_cast<double>(v.size());
    const double avg = sum / n;
    return std::array<double, 3>{avg,
                                 std::sqrt(std::max(sum2 / n - avg * avg, 0.0)),
                                 mx};
  };
  const auto b = stats(base_errs);
  const auto c = stats(cross_errs);
  std::printf("%-18s %17.1f%% %21.1f%%   (paper: 17.7 -> 13.9)\n", "Average",
              b[0], c[0]);
  std::printf("%-18s %17.1f%% %21.1f%%   (paper: 11.0 -> 6.5)\n", "Std. Dev.",
              b[1], c[1]);
  std::printf("%-18s %17.1f%% %21.1f%%   (paper: 41.7 -> 30.0)\n", "Max.",
              b[2], c[2]);
  return 0;
}
