// Figure 8: prediction gallery on the Opteron (Section 4.4) --
// (a) raytrace scales cleanly (paper max err 4.6%),
// (b) intruder and (c) yada change behaviour and ESTIMA catches it,
// (d) kmeans is noisy: absolute error is high (paper 50.9%) but the
//     predicted scalability shape is right.
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

int main() {
  bench::print_header("Figure 8: ESTIMA predictions (Opteron, 12 -> 48)");
  const std::vector<int> marks = {1, 4, 8, 12, 16, 24, 32, 40, 48};

  for (const char* name : {"raytrace", "intruder", "yada", "kmeans"}) {
    const bool sw = bench::reports_software_stalls(name);
    auto e = bench::run_experiment(name, sim::opteron48(), 12, sw);
    std::printf("\n--- (%s) ---\n", name);
    std::printf("%-28s", "cores");
    for (int n : marks) std::printf(" %9d", n);
    std::printf("\n");
    bench::print_series("measured time (s)", marks,
                        bench::at_cores(e.truth.cores, e.truth.time_s, marks));
    bench::print_series("ESTIMA prediction (s)", marks,
                        bench::at_cores(e.estima.cores, e.estima.time_s,
                                        marks));
    std::printf("max err %.1f%%, best cores: predicted %d / actual %d, "
                "verdict match: %s\n",
                e.estima_err.max_pct, e.estima_err.predicted_best_cores,
                e.estima_err.actual_best_cores,
                e.estima_err.scaling_verdict_match ? "yes" : "NO");
  }
  return 0;
}
