// Figure 1: "Time extrapolation for kmeans".
//
// Directly extrapolating the execution-time measurements of kmeans taken on
// 12 Opteron cores predicts that the application keeps scaling to 48 cores;
// in reality it stops scaling around 16-20 cores. ESTIMA's stall-based
// prediction catches the slowdown.
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

int main() {
  bench::print_header(
      "Figure 1: time extrapolation mispredicts kmeans (Opteron, measure 12)");
  auto e = bench::run_experiment("kmeans", sim::opteron48(), 12);

  const std::vector<int> marks = {1, 2, 4, 8, 12, 16, 20, 24, 32, 40, 48};
  std::printf("%-28s", "cores");
  for (int n : marks) std::printf(" %9d", n);
  std::printf("\n");
  bench::print_series("measured time (s)", marks,
                      bench::at_cores(e.truth.cores, e.truth.time_s, marks));
  bench::print_series(
      "time extrapolation (s)", marks,
      bench::at_cores(e.time_extrap.cores, e.time_extrap.time_s, marks));
  bench::print_series("ESTIMA prediction (s)", marks,
                      bench::at_cores(e.estima.cores, e.estima.time_s, marks));

  std::printf("\nactual best core count:            %d\n",
              [&] {
                int best = e.truth.cores[0];
                double bt = e.truth.time_s[0];
                for (std::size_t i = 0; i < e.truth.cores.size(); ++i) {
                  if (e.truth.time_s[i] < bt) {
                    bt = e.truth.time_s[i];
                    best = e.truth.cores[i];
                  }
                }
                return best;
              }());
  std::printf("time-extrapolation best core count: %d  (predicts scaling: %s)\n",
              e.time_extrap.best_core_count(),
              e.time_extrap.best_core_count() >= 40 ? "yes -- WRONG" : "no");
  std::printf("ESTIMA best core count:             %d  (predicts scaling: %s)\n",
              e.estima.best_core_count(),
              e.estima.best_core_count() >= 40 ? "yes" : "no -- correct");
  std::printf(
      "\npaper: time extrapolation predicts kmeans scales to 48 cores; it "
      "does not.\n");
  return 0;
}
