// Maintenance tool (not a paper artifact): prints, for every workload and
// machine, the simulated time curve, the best core count, the
// stalls-per-core/time correlation and ESTIMA's prediction error. Used to
// keep the preset calibration honest when the simulator evolves.
#include <cstdio>

#include "bench_util.hpp"
#include "numeric/stats.hpp"

using namespace estima;

int main() {
  const std::vector<sim::MachineSpec> machines = {
      sim::opteron48(), sim::xeon20(), sim::xeon48()};

  for (const auto& m : machines) {
    bench::print_header("calibration: machine " + m.name);
    std::printf("%-18s %9s %9s %7s %8s %8s %8s\n", "workload", "t(1)",
                "t(max)", "best_n", "corr", "err%", "terr%");
    for (const auto& name : sim::presets::benchmark_workload_names()) {
      const int measure = m.cores_per_socket();
      auto e = bench::run_experiment(name, m, measure);
      const auto spc = e.truth.stalls_per_core(false, true);
      const double corr = numeric::pearson(spc, e.truth.time_s);
      int best = e.truth.cores[0];
      double bt = e.truth.time_s[0];
      for (std::size_t i = 0; i < e.truth.cores.size(); ++i) {
        if (e.truth.time_s[i] < bt) {
          bt = e.truth.time_s[i];
          best = e.truth.cores[i];
        }
      }
      std::printf("%-18s %9.3f %9.3f %7d %8.2f %8.1f %8.1f\n", name.c_str(),
                  e.truth.time_s.front(), e.truth.time_s.back(), best, corr,
                  e.estima_err.max_pct, e.time_extrap_err.max_pct);
    }
  }
  return 0;
}
