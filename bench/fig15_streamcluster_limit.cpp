// Figure 15: the main limitation of ESTIMA (Section 5.4).
//
// streamcluster changes behaviour significantly past ~30 Opteron cores
// (synchronisation + bandwidth saturation). Measuring only one socket
// (12 cores) gives no hint of the change, so absolute errors are high;
// measuring two sockets (24 cores) captures the onset and the prediction
// improves significantly.
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

int main() {
  bench::print_header(
      "Figure 15: streamcluster from 12 vs 24 measurement cores (Opteron)");
  const std::vector<int> marks = {1, 8, 12, 16, 24, 32, 36, 40, 48};
  auto from12 = bench::run_experiment("streamcluster", sim::opteron48(), 12);
  auto from24 = bench::run_experiment("streamcluster", sim::opteron48(), 24);

  std::printf("%-28s", "cores");
  for (int n : marks) std::printf(" %9d", n);
  std::printf("\n");
  bench::print_series("measured time (s)", marks,
                      bench::at_cores(from12.truth.cores,
                                      from12.truth.time_s, marks));
  bench::print_series("(a) predicted from 12 (s)", marks,
                      bench::at_cores(from12.estima.cores,
                                      from12.estima.time_s, marks));
  bench::print_series("(b) predicted from 24 (s)", marks,
                      bench::at_cores(from24.estima.cores,
                                      from24.estima.time_s, marks));

  std::printf("\nmax error from 12 cores: %.1f%%\n",
              from12.estima_err.max_pct);
  std::printf("max error from 24 cores: %.1f%%  (improvement %.0f%%)\n",
              from24.estima_err.max_pct,
              100.0 * (from12.estima_err.max_pct - from24.estima_err.max_pct) /
                  from12.estima_err.max_pct);
  std::printf(
      "\npaper: the >30-core behaviour change is invisible at 12 cores;\n"
      "with 24-core measurements the prediction is significantly better.\n");
  return 0;
}
