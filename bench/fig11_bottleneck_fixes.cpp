// Figure 11: fixing the bottlenecks found in Figure 10 (Section 4.6).
//
// streamcluster: PARSEC pthread-mutex barriers replaced by test-and-set
//   spinlocks -- the paper improves execution time by up to 74%.
// intruder: decoding more elements per transaction -- up to 70% better.
// Both fixed versions still scale poorly overall, as the paper notes.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

namespace {

void compare(const char* original, const char* fixed) {
  const auto m = sim::opteron48();
  const auto orig =
      sim::simulate(sim::presets::workload(original), m,
                    sim::all_core_counts(m));
  const auto fix =
      sim::simulate(sim::presets::workload(fixed), m,
                    sim::all_core_counts(m));

  const std::vector<int> marks = {1, 8, 16, 24, 32, 40, 48};
  std::printf("\n--- %s vs %s ---\n", original, fixed);
  std::printf("%-28s", "cores");
  for (int n : marks) std::printf(" %9d", n);
  std::printf("\n");
  bench::print_series("original time (s)", marks,
                      bench::at_cores(orig.cores, orig.time_s, marks));
  bench::print_series("modified time (s)", marks,
                      bench::at_cores(fix.cores, fix.time_s, marks));

  double best_gain = 0.0;
  int best_n = 0;
  for (std::size_t i = 0; i < orig.cores.size(); ++i) {
    const double gain = 100.0 * (orig.time_s[i] - fix.time_s[i]) /
                        orig.time_s[i];
    if (gain > best_gain) {
      best_gain = gain;
      best_n = orig.cores[i];
    }
  }
  std::printf("max improvement: %.0f%% at %d cores\n", best_gain, best_n);
}

}  // namespace

int main() {
  bench::print_header("Figure 11: scalability fixes (Opteron, full machine)");
  compare("streamcluster", "streamcluster-spin");  // paper: up to 74%
  compare("intruder", "intruder-batched");         // paper: up to 70%
  std::printf(
      "\npaper: up to 74%% (streamcluster) and 70%% (intruder) improvement;\n"
      "both still scale poorly -- more bottlenecks remain.\n");
  return 0;
}
