// Figure 13: prediction errors with and without software stalled cycles
// (Section 5.3).
//
// For the STM workloads (SwissTM abort cycles) and the pthread-wrapped
// applications, including software stalls improves prediction accuracy by
// 57% on average in the paper, and by up to 87% (genome at 4x cores).
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

int main() {
  bench::print_header(
      "Figure 13: errors with vs without software stalls (Opteron, 12 -> 48)");
  std::printf("%-16s %14s %14s %14s\n", "workload", "with sw err%",
              "hw-only err%", "improvement");

  double sum_gain = 0.0;
  int count = 0;
  for (const auto& name : sim::presets::benchmark_workload_names()) {
    if (!bench::reports_software_stalls(name)) continue;
    auto with_sw = bench::run_experiment(name, sim::opteron48(), 12, true);
    auto without = bench::run_experiment(name, sim::opteron48(), 12, false);
    const double gain =
        without.estima_err.max_pct > 0.0
            ? 100.0 * (without.estima_err.max_pct - with_sw.estima_err.max_pct) /
                  without.estima_err.max_pct
            : 0.0;
    sum_gain += gain;
    ++count;
    std::printf("%-16s %13.1f%% %13.1f%% %13.1f%%\n", name.c_str(),
                with_sw.estima_err.max_pct, without.estima_err.max_pct, gain);
  }
  std::printf("\naverage improvement from software stalls: %.1f%% "
              "(paper: 57%% average, up to 87%%)\n",
              count ? sum_gain / count : 0.0);
  return 0;
}
