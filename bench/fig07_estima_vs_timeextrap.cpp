// Figure 7: the biggest accuracy differences between ESTIMA and time
// extrapolation (Section 4.4).
//
// The paper highlights intruder, yada, kmeans and raytrace on the Opteron:
// time extrapolation misses the behaviour changes of the first three (up to
// 81% / 130% worse on intruder / yada) while ESTIMA captures them.
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

int main() {
  bench::print_header(
      "Figure 7: ESTIMA vs time extrapolation, max error (Opteron, 12 -> 48)");
  std::printf("%-14s %14s %18s %12s\n", "workload", "ESTIMA err%",
              "time-extrap err%", "winner");
  for (const char* name : {"raytrace", "intruder", "yada", "kmeans"}) {
    const bool sw = bench::reports_software_stalls(name);
    auto e = bench::run_experiment(name, sim::opteron48(), 12, sw);
    std::printf("%-14s %13.1f%% %17.1f%% %12s\n", name,
                e.estima_err.max_pct, e.time_extrap_err.max_pct,
                e.estima_err.max_pct <= e.time_extrap_err.max_pct
                    ? "ESTIMA"
                    : "time-extrap");
  }

  std::printf("\nBehaviour-change detection (best core count):\n");
  std::printf("%-14s %10s %14s %14s\n", "workload", "actual", "ESTIMA",
              "time-extrap");
  for (const char* name : {"raytrace", "intruder", "yada", "kmeans"}) {
    const bool sw = bench::reports_software_stalls(name);
    auto e = bench::run_experiment(name, sim::opteron48(), 12, sw);
    std::printf("%-14s %10d %14d %14d\n", name,
                e.estima_err.actual_best_cores,
                e.estima.best_core_count(), e.time_extrap.best_core_count());
  }
  std::printf(
      "\npaper: time extrapolation misses the intruder/yada/kmeans slowdown\n"
      "entirely (predicts scaling to 48); ESTIMA pinpoints it.\n");
  return 0;
}
