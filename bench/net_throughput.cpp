// Network front-end throughput: loopback HTTP requests/sec, cold vs warm.
//
// The question this bench answers: what does the HTTP edge cost on top of
// the serving layer it fronts? Three rates over a real loopback socket:
//   cold  — POST /v1/predict per campaign on an empty cache (every
//           request computes; the single-campaign reference);
//   warm  — the same requests again, all answered from the campaign
//           cache (the dashboard/capacity-planner steady state), with
//           --idle-clients (default 512) established keep-alive
//           connections held open and silent the whole time — the wall
//           the thread-per-connection server hit, and the scenario the
//           epoll event loop exists for;
//   batch — one POST /v1/predict_batch carrying every campaign at once,
//           warm (framing + predict_many amortised over one request).
// Every warm response is parsed back with read_prediction and must be
// bit-identical to an in-process serial predict(); the warm hit rate must
// be 100%; warm requests/sec (idle horde attached) must be >= 10x cold;
// the horde must still be fully connected when the warm window ends. The
// bench exits non-zero when any bar fails.
//
// Reports JSON to BENCH_net_throughput.json (and text to stdout).
//
// Flags:
//   --campaigns=C      distinct campaigns              (default 8)
//   --points=M         measured core counts 1..M      (default 12)
//   --target=T         extrapolation horizon          (default 48)
//   --threads=N        prediction pool size           (default: hardware)
//   --http-threads=N   handler pool size              (default 4)
//   --io-threads=N     event-loop threads             (default 2)
//   --idle-clients=N   idle keep-alive connections    (default 512)
//   --warm-seconds=S   minimum warm window            (default 0.5)
//   --out=PATH         JSON output path (default BENCH_net_throughput.json)
//   --chaos            after the clean bars, re-run the warm window with
//                      ~1% socket faults injected on both sides of the
//                      wire (server read/write, client send/recv) and a
//                      retrying client; reports throughput retention vs
//                      the clean warm rate and the request error rate.
//                      Requires a build with ESTIMA_FAULT_INJECTION=ON;
//                      otherwise the JSON records chaos as disabled.
//   --chaos-seed=S     fault-schedule RNG seed        (default 1)
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/measurement.hpp"
#include "fault/fault_injection.hpp"
#include "core/prediction_io.hpp"
#include "core/predictor.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "service/prediction_service.hpp"
#include "service/routes.hpp"
#include "tests/net_support.hpp"
#include "tests/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using estima::bench::bit_identical;
using estima::bench::parse_flag_d;
using estima::bench::parse_flag_s;

estima::core::MeasurementSet make_campaign(int seed, int points) {
  estima::testing::SyntheticSpec spec;
  spec.mem_rate = 0.25 + 0.02 * (seed % 7);
  spec.serial_frac = 0.005 + 0.0015 * (seed % 5);
  spec.stm_rate = seed % 2 ? 1e-4 : 0.0;
  spec.noise = 0.02;
  return estima::testing::make_synthetic(
      spec, estima::testing::counts_up_to(points),
      ("net-campaign-" + std::to_string(seed)).c_str());
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string csv_of(const estima::core::MeasurementSet& ms) {
  std::ostringstream os;
  estima::core::write_csv(os, ms);
  return os.str();
}

/// Establishes n keep-alive connections: each completes one GET /v1/stats
/// round trip (so it is a real, served keep-alive client, not just a TCP
/// handshake) and then goes silent. Returns the connected fds; -1 entries
/// mean the slot could not be established.
std::vector<int> open_idle_clients(int port, int n) {
  using namespace estima::net;
  std::vector<int> fds(static_cast<std::size_t>(n), -1);
  for (auto& fd : fds) {
    fd = estima::testing::raw_connect(port);
  }
  // Pipeline the handshakes: write all requests, then read all responses.
  const std::string wire = serialize_request("GET", "/v1/stats", "", {});
  for (int fd : fds) {
    if (fd >= 0) (void)::send(fd, wire.data(), wire.size(), 0);
  }
  char buf[4096];
  for (auto& fd : fds) {
    if (fd < 0) continue;
    ResponseParser parser;
    while (parser.state() == ResponseParser::State::kNeedMore) {
      const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
      if (r <= 0) break;
      parser.feed(buf, static_cast<std::size_t>(r));
    }
    if (parser.state() != ResponseParser::State::kComplete) {
      ::close(fd);
      fd = -1;
    }
  }
  return fds;
}

}  // namespace

int run_bench(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_bench(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "net_throughput: %s\n", e.what());
    return 1;
  }
}

int run_bench(int argc, char** argv) {
  const int campaigns =
      static_cast<int>(parse_flag_d(argc, argv, "campaigns", 8));
  const int points = static_cast<int>(parse_flag_d(argc, argv, "points", 12));
  const int target = static_cast<int>(parse_flag_d(argc, argv, "target", 48));
  const int threads = static_cast<int>(parse_flag_d(
      argc, argv, "threads",
      static_cast<double>(estima::parallel::ThreadPool::hardware_threads())));
  const int http_threads =
      static_cast<int>(parse_flag_d(argc, argv, "http-threads", 4));
  const int io_threads =
      static_cast<int>(parse_flag_d(argc, argv, "io-threads", 2));
  const int idle_clients =
      static_cast<int>(parse_flag_d(argc, argv, "idle-clients", 512));
  const double warm_seconds = parse_flag_d(argc, argv, "warm-seconds", 0.5);
  const std::string out_path =
      parse_flag_s(argc, argv, "out", "BENCH_net_throughput.json");
  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--chaos") chaos = true;
  }
  const auto chaos_seed = static_cast<std::uint64_t>(
      parse_flag_d(argc, argv, "chaos-seed", 1));
  if (chaos && !estima::fault::compiled_in()) {
    std::fprintf(stderr,
                 "net_throughput: --chaos needs ESTIMA_FAULT_INJECTION=ON; "
                 "reporting chaos as disabled\n");
    chaos = false;
  }

  std::vector<estima::core::MeasurementSet> uniques;
  std::vector<std::string> bodies;
  for (int i = 0; i < campaigns; ++i) {
    uniques.push_back(make_campaign(i, points));
    bodies.push_back(csv_of(uniques.back()));
  }

  estima::core::PredictionConfig cfg;
  cfg.target_cores = estima::core::cores_up_to(target);

  std::printf("net_throughput: %d campaigns over loopback HTTP, horizon %d, "
              "%d prediction threads, %d handler workers, %d io loops, "
              "%d idle keep-alive clients\n",
              campaigns, target, threads, http_threads, io_threads,
              idle_clients);

  // Serial in-process reference: the bit-identity baseline (the campaign
  // each response must reproduce exactly, through CSV -> predict ->
  // write_prediction -> HTTP -> read_prediction).
  std::vector<estima::core::Prediction> serial;
  for (const auto& u : uniques) serial.push_back(estima::core::predict(u, cfg));

  estima::parallel::ThreadPool pool(
      static_cast<std::size_t>(threads > 0 ? threads : 1));
  estima::service::ServiceConfig scfg;
  scfg.prediction = cfg;
  scfg.cache_capacity = static_cast<std::size_t>(64 * campaigns);
  estima::service::PredictionService service(scfg, &pool);
  estima::service::RouterConfig rcfg;
  rcfg.max_batch_campaigns = static_cast<std::size_t>(campaigns) + 16;
  estima::service::ServiceRouter router(service, rcfg);

  estima::net::ServerConfig ncfg;
  ncfg.worker_threads =
      static_cast<std::size_t>(http_threads > 0 ? http_threads : 1);
  ncfg.io_threads = static_cast<std::size_t>(io_threads > 0 ? io_threads : 1);
  estima::net::HttpServer server(
      ncfg, [&router](const estima::net::HttpRequest& req) {
        return router.handle(req);
      });
  server.start();
  estima::net::HttpClient client("127.0.0.1", server.port());

  // Cold: every request computes its campaign.
  const auto cold_start = Clock::now();
  for (const auto& body : bodies) {
    const auto resp = client.post("/v1/predict", body, "text/csv");
    if (resp.status != 200) {
      std::fprintf(stderr, "cold request failed: %d %s\n", resp.status,
                   resp.body.c_str());
      return 1;
    }
  }
  const double cold_elapsed = seconds_since(cold_start);
  const double cold_rps = campaigns / cold_elapsed;
  const auto after_cold = service.stats();

  // The idle horde: established keep-alive clients that sit silent for
  // the whole warm window. Under the old thread-per-connection server
  // this many idle clients exhausted the worker budget; the event loop
  // must serve warm traffic at full speed past them.
  estima::testing::raise_fd_limit(
      static_cast<rlim_t>(2 * idle_clients + 256));
  std::vector<int> horde = open_idle_clients(server.port(), idle_clients);
  const int horde_connected = static_cast<int>(
      std::count_if(horde.begin(), horde.end(), [](int fd) { return fd >= 0; }));
  if (horde_connected < idle_clients) {
    std::fprintf(stderr, "only %d of %d idle clients connected\n",
                 horde_connected, idle_clients);
  }

  // Warm: loop the same requests; everything must hit. The first pass
  // also checks bit-identity through the full wire round-trip.
  bool identical = true;
  estima::bench::LatencyRecorder warm_lat;
  std::size_t warm_requests = 0;
  const auto warm_start = Clock::now();
  double warm_elapsed = 0.0;
  for (int pass = 0;; ++pass) {
    for (int i = 0; i < campaigns; ++i) {
      const auto req_start = Clock::now();
      const auto resp = client.post("/v1/predict", bodies[static_cast<std::size_t>(i)], "text/csv");
      if (resp.status != 200) {
        std::fprintf(stderr, "warm request failed: %d %s\n", resp.status,
                     resp.body.c_str());
        return 1;
      }
      warm_lat.record(req_start, Clock::now());
      ++warm_requests;
      if (pass == 0) {
        std::istringstream is(resp.body);
        const auto got = estima::core::read_prediction(is);
        if (!bit_identical(got, serial[static_cast<std::size_t>(i)])) {
          identical = false;
        }
      }
    }
    warm_elapsed = seconds_since(warm_start);
    if (warm_elapsed >= warm_seconds && pass >= 1) break;
  }
  const double warm_rps = static_cast<double>(warm_requests) / warm_elapsed;
  const auto after_warm = service.stats();

  // Warm batch: all campaigns in one request.
  const std::string batch_body =
      estima::service::frame_bodies(bodies, "campaign");
  std::size_t batch_requests = 0;
  const auto batch_start = Clock::now();
  double batch_elapsed = 0.0;
  for (;;) {
    const auto resp = client.post("/v1/predict_batch", batch_body, "text/plain");
    if (resp.status != 200) {
      std::fprintf(stderr, "batch request failed: %d %s\n", resp.status,
                   resp.body.c_str());
      return 1;
    }
    ++batch_requests;
    if (batch_requests == 1) {
      const auto records = estima::service::parse_frames(
          resp.body, "prediction", static_cast<std::size_t>(campaigns));
      if (records.size() != static_cast<std::size_t>(campaigns)) {
        identical = false;
      } else {
        for (int i = 0; i < campaigns; ++i) {
          std::istringstream is(records[static_cast<std::size_t>(i)]);
          const auto got = estima::core::read_prediction(is);
          if (!bit_identical(got, serial[static_cast<std::size_t>(i)])) {
            identical = false;
          }
        }
      }
    }
    batch_elapsed = seconds_since(batch_start);
    if (batch_elapsed >= warm_seconds && batch_requests >= 2) break;
  }
  const double batch_cps =
      static_cast<double>(batch_requests) * campaigns / batch_elapsed;

  // Observability overhead over the wire: the same warm request with the
  // server's tracer detached vs attached (set_tracer is an atomic swap),
  // strictly alternating on one keep-alive connection so both sides see
  // the same scheduler and the same cache state. Each side's per-request
  // times are tail-trimmed before comparing means, so one preempted
  // round trip cannot masquerade as tracing cost. The traced side pays
  // the full edge path: trace creation, edge.read/parse/queue.wait/
  // serialize/edge.write spans, stage histograms, and finish().
  estima::obs::Registry registry;
  estima::obs::TracerConfig tcfg;
  tcfg.slow_threshold_ms = -1;  // measuring span cost, not collecting slow
  estima::obs::Tracer tracer(registry, tcfg);
  std::vector<double> untraced_ns, traced_ns;
  {
    const double window_s = std::max(0.3, warm_seconds);
    const auto start = Clock::now();
    std::size_t n = 0;
    while (seconds_since(start) < window_s) {
      const auto idx = n++ % bodies.size();
      server.set_tracer(nullptr);
      const auto u0 = Clock::now();
      const auto ur = client.post("/v1/predict", bodies[idx], "text/csv");
      const auto u1 = Clock::now();
      server.set_tracer(&tracer);
      const auto t0 = Clock::now();
      const auto tr = client.post("/v1/predict", bodies[idx], "text/csv");
      const auto t1 = Clock::now();
      if (ur.status != 200 || tr.status != 200) {
        std::fprintf(stderr, "overhead request failed: %d / %d\n", ur.status,
                     tr.status);
        return 1;
      }
      untraced_ns.push_back(
          std::chrono::duration<double, std::nano>(u1 - u0).count());
      traced_ns.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
    server.set_tracer(nullptr);
  }
  const auto trimmed_mean = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    const std::size_t keep = std::max<std::size_t>(1, v.size() * 9 / 10);
    double sum = 0.0;
    for (std::size_t i = 0; i < keep; ++i) sum += v[i];
    return sum / static_cast<double>(keep);
  };
  const double untraced_req_ns = trimmed_mean(untraced_ns);
  const double traced_req_ns = trimmed_mean(traced_ns);
  const double untraced_rps = 1e9 / untraced_req_ns;
  const double traced_rps = 1e9 / traced_req_ns;
  const double obs_overhead_pct =
      100.0 * (traced_req_ns - untraced_req_ns) / untraced_req_ns;

  // Chaos window: the same warm traffic with ~1% of socket operations on
  // both sides of the wire failing (or short-writing), driven through the
  // client's retry policy. The questions: how much warm throughput
  // survives the fault rate, how many requests ultimately fail, and —
  // above all — whether any delivered 200 is ever a wrong answer.
  double chaos_rps = 0.0;
  double chaos_retention = 0.0;
  double chaos_error_rate = 0.0;
  std::size_t chaos_ok = 0;
  std::size_t chaos_failed = 0;
  std::size_t chaos_wrong = 0;
  if (chaos) {
    std::vector<std::string> expected;
    for (const auto& p : serial) {
      std::ostringstream os;
      estima::core::write_prediction(os, p);
      expected.push_back(os.str());
    }
    estima::net::HttpClient cclient("127.0.0.1", server.port());
    estima::net::RetryConfig rc;
    rc.max_attempts = 5;
    rc.base_delay_ms = 1;
    rc.max_delay_ms = 20;
    rc.budget_ms = 1'000;
    rc.seed = chaos_seed;
    cclient.set_retry_config(rc);

    estima::fault::seed_rng(chaos_seed);
    estima::fault::FaultSpec p;
    p.trigger = estima::fault::FaultSpec::Trigger::kProbability;
    p.probability = 0.01;
    estima::fault::arm("net.read", p);
    estima::fault::arm("client.send", p);
    estima::fault::arm("client.recv", p);
    estima::fault::FaultSpec shortw = p;
    shortw.short_io = true;
    estima::fault::arm("net.write", shortw);

    const auto chaos_start = Clock::now();
    double chaos_elapsed = 0.0;
    for (int pass = 0;; ++pass) {
      for (int i = 0; i < campaigns; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        try {
          const auto resp =
              cclient.request_with_retry("POST", "/v1/predict", bodies[idx],
                                         {{"content-type", "text/csv"}});
          if (resp.status == 200) {
            if (resp.body == expected[idx]) {
              ++chaos_ok;
            } else {
              ++chaos_wrong;
            }
          } else {
            ++chaos_failed;
          }
        } catch (const std::exception&) {
          ++chaos_failed;  // retries exhausted: counted, not fatal
        }
      }
      chaos_elapsed = seconds_since(chaos_start);
      if (chaos_elapsed >= warm_seconds && pass >= 1) break;
    }
    estima::fault::reset();

    chaos_rps = static_cast<double>(chaos_ok) / chaos_elapsed;
    chaos_retention = warm_rps > 0.0 ? chaos_rps / warm_rps : 0.0;
    const std::size_t chaos_total = chaos_ok + chaos_failed + chaos_wrong;
    chaos_error_rate =
        chaos_total > 0
            ? static_cast<double>(chaos_failed + chaos_wrong) /
                  static_cast<double>(chaos_total)
            : 0.0;
  }

  const std::uint64_t warm_hits =
      after_warm.cache.hits - after_cold.cache.hits;
  const std::uint64_t warm_misses =
      after_warm.cache.misses - after_cold.cache.misses;
  const double warm_hit_rate =
      warm_hits + warm_misses > 0
          ? static_cast<double>(warm_hits) /
                static_cast<double>(warm_hits + warm_misses)
          : 0.0;
  const bool no_new_compute =
      after_warm.predictions_computed == after_cold.predictions_computed;
  const double warm_speedup = warm_rps / cold_rps;
  const bool speedup_ok = warm_speedup >= 10.0;
  const bool hit_rate_ok = warm_hit_rate == 1.0 && no_new_compute;

  // The horde must have been fully connected (and still open) while the
  // warm rate was measured: the idle clients + the bench client itself.
  const auto sstats = server.stats();
  const bool idle_held =
      horde_connected == idle_clients &&
      sstats.open_connections >= static_cast<std::uint64_t>(idle_clients);
  for (int fd : horde) {
    if (fd >= 0) ::close(fd);
  }
  server.stop();

  std::printf("  cold  /v1/predict %10.2f requests/s  (%d in %.3fs)\n",
              cold_rps, campaigns, cold_elapsed);
  std::printf("  warm  /v1/predict %10.2f requests/s  (%zu in %.3fs, "
              "%d idle clients held open: %s)\n",
              warm_rps, warm_requests, warm_elapsed, horde_connected,
              idle_held ? "yes" : "NO");
  std::printf("  warm  batch       %10.2f campaigns/s (%zu requests in %.3fs)\n",
              batch_cps, batch_requests, batch_elapsed);
  std::printf("  warm vs cold speedup: %.1fx (bar: >= 10x)\n", warm_speedup);
  std::printf("  warm hit rate: %.0f%%, no new compute: %s\n",
              100.0 * warm_hit_rate, no_new_compute ? "yes" : "NO");
  std::printf("  bit-identical through the wire: %s\n",
              identical ? "yes" : "NO");
  std::printf("  traced vs untraced warm: untraced %10.2f/s  traced "
              "%10.2f/s  obs overhead %.2f%%\n",
              untraced_rps, traced_rps, obs_overhead_pct);
  {
    const auto ls = warm_lat.stats();
    std::printf("  warm latency: p50 %.4fms p90 %.4fms p99 %.4fms "
                "p999 %.4fms\n",
                ls.p50_ms, ls.p90_ms, ls.p99_ms, ls.p999_ms);
  }
  if (chaos) {
    std::printf("  chaos (seed=%llu, ~1%% socket faults): %10.2f requests/s, "
                "%.0f%% retention, %.2f%% error rate, wrong answers: %zu\n",
                static_cast<unsigned long long>(chaos_seed), chaos_rps,
                100.0 * chaos_retention, 100.0 * chaos_error_rate,
                chaos_wrong);
  }
  std::printf("  server: accepted=%llu peak_open=%llu served=%llu "
              "4xx=%llu 5xx=%llu\n",
              static_cast<unsigned long long>(sstats.connections_accepted),
              static_cast<unsigned long long>(sstats.peak_connections),
              static_cast<unsigned long long>(sstats.requests_served),
              static_cast<unsigned long long>(sstats.responses_4xx),
              static_cast<unsigned long long>(sstats.responses_5xx));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  estima::obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "net_throughput");
  w.kv("campaigns", campaigns);
  w.kv("measured_points", points);
  w.kv("target_cores", target);
  w.kv("prediction_threads", threads);
  w.kv("http_workers", http_threads);
  w.kv("io_threads", io_threads);
  w.kv("idle_clients", idle_clients);
  w.kv("idle_clients_connected", horde_connected);
  w.kv("idle_clients_held_through_warm", idle_held);
  w.kv("peak_connections", sstats.peak_connections);
  w.kv("cold_requests_per_sec", cold_rps, 3);
  w.kv("warm_requests_per_sec", warm_rps, 3);
  w.kv("warm_batch_campaigns_per_sec", batch_cps, 3);
  w.kv("warm_speedup_vs_cold", warm_speedup, 3);
  w.kv("warm_hit_rate", warm_hit_rate, 4);
  w.kv("requests_served", sstats.requests_served);
  w.kv("bit_identical_through_wire", identical);
  w.kv("untraced_warm_requests_per_sec", untraced_rps, 3);
  w.kv("traced_warm_requests_per_sec", traced_rps, 3);
  w.kv("obs_overhead_pct", obs_overhead_pct, 2);
  estima::bench::write_latency_json(w, "warm_latency", warm_lat);
  w.begin_object("chaos");
  w.kv("enabled", chaos);
  if (chaos) {
    w.kv("seed", chaos_seed);
    w.kv("requests_per_sec", chaos_rps, 3);
    w.kv("throughput_retention", chaos_retention, 4);
    w.kv("error_rate", chaos_error_rate, 4);
    w.kv("ok", static_cast<std::uint64_t>(chaos_ok));
    w.kv("failed", static_cast<std::uint64_t>(chaos_failed));
    w.kv("wrong_answers", static_cast<std::uint64_t>(chaos_wrong));
  }
  w.end_object();
  w.kv("speedup_bar_met", speedup_ok);
  w.end_object();
  std::fputs(w.str().c_str(), f);
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());

  // A wrong answer under chaos is a correctness failure, same as a
  // bit-identity failure on the clean path.
  return (identical && hit_rate_ok && speedup_ok && idle_held &&
          chaos_wrong == 0)
             ? 0
             : 2;
}
