// Network front-end throughput: loopback HTTP requests/sec, cold vs warm.
//
// The question this bench answers: what does the HTTP edge cost on top of
// the serving layer it fronts? Three rates over a real loopback socket:
//   cold  — POST /v1/predict per campaign on an empty cache (every
//           request computes; the single-campaign reference);
//   warm  — the same requests again, all answered from the campaign
//           cache (the dashboard/capacity-planner steady state);
//   batch — one POST /v1/predict_batch carrying every campaign at once,
//           warm (framing + predict_many amortised over one request).
// Every warm response is parsed back with read_prediction and must be
// bit-identical to an in-process serial predict(); the warm hit rate must
// be 100%; warm requests/sec must be >= 10x cold. The bench exits
// non-zero when any bar fails.
//
// Reports JSON to BENCH_net_throughput.json (and text to stdout).
//
// Flags:
//   --campaigns=C      distinct campaigns              (default 8)
//   --points=M         measured core counts 1..M      (default 12)
//   --target=T         extrapolation horizon          (default 48)
//   --threads=N        prediction pool size           (default: hardware)
//   --http-threads=N   connection workers             (default 4)
//   --warm-seconds=S   minimum warm window            (default 0.5)
//   --out=PATH         JSON output path (default BENCH_net_throughput.json)
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/measurement.hpp"
#include "core/prediction_io.hpp"
#include "core/predictor.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "parallel/thread_pool.hpp"
#include "service/prediction_service.hpp"
#include "service/routes.hpp"
#include "tests/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using estima::bench::bit_identical;
using estima::bench::parse_flag_d;
using estima::bench::parse_flag_s;

estima::core::MeasurementSet make_campaign(int seed, int points) {
  estima::testing::SyntheticSpec spec;
  spec.mem_rate = 0.25 + 0.02 * (seed % 7);
  spec.serial_frac = 0.005 + 0.0015 * (seed % 5);
  spec.stm_rate = seed % 2 ? 1e-4 : 0.0;
  spec.noise = 0.02;
  return estima::testing::make_synthetic(
      spec, estima::testing::counts_up_to(points),
      ("net-campaign-" + std::to_string(seed)).c_str());
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string csv_of(const estima::core::MeasurementSet& ms) {
  std::ostringstream os;
  estima::core::write_csv(os, ms);
  return os.str();
}

}  // namespace

int run_bench(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_bench(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "net_throughput: %s\n", e.what());
    return 1;
  }
}

int run_bench(int argc, char** argv) {
  const int campaigns =
      static_cast<int>(parse_flag_d(argc, argv, "campaigns", 8));
  const int points = static_cast<int>(parse_flag_d(argc, argv, "points", 12));
  const int target = static_cast<int>(parse_flag_d(argc, argv, "target", 48));
  const int threads = static_cast<int>(parse_flag_d(
      argc, argv, "threads",
      static_cast<double>(estima::parallel::ThreadPool::hardware_threads())));
  const int http_threads =
      static_cast<int>(parse_flag_d(argc, argv, "http-threads", 4));
  const double warm_seconds = parse_flag_d(argc, argv, "warm-seconds", 0.5);
  const std::string out_path =
      parse_flag_s(argc, argv, "out", "BENCH_net_throughput.json");

  std::vector<estima::core::MeasurementSet> uniques;
  std::vector<std::string> bodies;
  for (int i = 0; i < campaigns; ++i) {
    uniques.push_back(make_campaign(i, points));
    bodies.push_back(csv_of(uniques.back()));
  }

  estima::core::PredictionConfig cfg;
  cfg.target_cores = estima::core::cores_up_to(target);

  std::printf("net_throughput: %d campaigns over loopback HTTP, horizon %d, "
              "%d prediction threads, %d http workers\n",
              campaigns, target, threads, http_threads);

  // Serial in-process reference: the bit-identity baseline (the campaign
  // each response must reproduce exactly, through CSV -> predict ->
  // write_prediction -> HTTP -> read_prediction).
  std::vector<estima::core::Prediction> serial;
  for (const auto& u : uniques) serial.push_back(estima::core::predict(u, cfg));

  estima::parallel::ThreadPool pool(
      static_cast<std::size_t>(threads > 0 ? threads : 1));
  estima::service::ServiceConfig scfg;
  scfg.prediction = cfg;
  scfg.cache_capacity = static_cast<std::size_t>(64 * campaigns);
  estima::service::PredictionService service(scfg, &pool);
  estima::service::RouterConfig rcfg;
  rcfg.max_batch_campaigns = static_cast<std::size_t>(campaigns) + 16;
  estima::service::ServiceRouter router(service, rcfg);

  estima::net::ServerConfig ncfg;
  ncfg.worker_threads =
      static_cast<std::size_t>(http_threads > 0 ? http_threads : 1);
  estima::net::HttpServer server(
      ncfg, [&router](const estima::net::HttpRequest& req) {
        return router.handle(req);
      });
  server.start();
  estima::net::HttpClient client("127.0.0.1", server.port());

  // Cold: every request computes its campaign.
  const auto cold_start = Clock::now();
  for (const auto& body : bodies) {
    const auto resp = client.post("/v1/predict", body, "text/csv");
    if (resp.status != 200) {
      std::fprintf(stderr, "cold request failed: %d %s\n", resp.status,
                   resp.body.c_str());
      return 1;
    }
  }
  const double cold_elapsed = seconds_since(cold_start);
  const double cold_rps = campaigns / cold_elapsed;
  const auto after_cold = service.stats();

  // Warm: loop the same requests; everything must hit. The first pass
  // also checks bit-identity through the full wire round-trip.
  bool identical = true;
  std::size_t warm_requests = 0;
  const auto warm_start = Clock::now();
  double warm_elapsed = 0.0;
  for (int pass = 0;; ++pass) {
    for (int i = 0; i < campaigns; ++i) {
      const auto resp = client.post("/v1/predict", bodies[static_cast<std::size_t>(i)], "text/csv");
      if (resp.status != 200) {
        std::fprintf(stderr, "warm request failed: %d %s\n", resp.status,
                     resp.body.c_str());
        return 1;
      }
      ++warm_requests;
      if (pass == 0) {
        std::istringstream is(resp.body);
        const auto got = estima::core::read_prediction(is);
        if (!bit_identical(got, serial[static_cast<std::size_t>(i)])) {
          identical = false;
        }
      }
    }
    warm_elapsed = seconds_since(warm_start);
    if (warm_elapsed >= warm_seconds && pass >= 1) break;
  }
  const double warm_rps = static_cast<double>(warm_requests) / warm_elapsed;
  const auto after_warm = service.stats();

  // Warm batch: all campaigns in one request.
  const std::string batch_body =
      estima::service::frame_bodies(bodies, "campaign");
  std::size_t batch_requests = 0;
  const auto batch_start = Clock::now();
  double batch_elapsed = 0.0;
  for (;;) {
    const auto resp = client.post("/v1/predict_batch", batch_body, "text/plain");
    if (resp.status != 200) {
      std::fprintf(stderr, "batch request failed: %d %s\n", resp.status,
                   resp.body.c_str());
      return 1;
    }
    ++batch_requests;
    if (batch_requests == 1) {
      const auto records = estima::service::parse_frames(
          resp.body, "prediction", static_cast<std::size_t>(campaigns));
      if (records.size() != static_cast<std::size_t>(campaigns)) {
        identical = false;
      } else {
        for (int i = 0; i < campaigns; ++i) {
          std::istringstream is(records[static_cast<std::size_t>(i)]);
          const auto got = estima::core::read_prediction(is);
          if (!bit_identical(got, serial[static_cast<std::size_t>(i)])) {
            identical = false;
          }
        }
      }
    }
    batch_elapsed = seconds_since(batch_start);
    if (batch_elapsed >= warm_seconds && batch_requests >= 2) break;
  }
  const double batch_cps =
      static_cast<double>(batch_requests) * campaigns / batch_elapsed;

  const std::uint64_t warm_hits =
      after_warm.cache.hits - after_cold.cache.hits;
  const std::uint64_t warm_misses =
      after_warm.cache.misses - after_cold.cache.misses;
  const double warm_hit_rate =
      warm_hits + warm_misses > 0
          ? static_cast<double>(warm_hits) /
                static_cast<double>(warm_hits + warm_misses)
          : 0.0;
  const bool no_new_compute =
      after_warm.predictions_computed == after_cold.predictions_computed;
  const double warm_speedup = warm_rps / cold_rps;
  const bool speedup_ok = warm_speedup >= 10.0;
  const bool hit_rate_ok = warm_hit_rate == 1.0 && no_new_compute;

  const auto sstats = server.stats();
  server.stop();

  std::printf("  cold  /v1/predict %10.2f requests/s  (%d in %.3fs)\n",
              cold_rps, campaigns, cold_elapsed);
  std::printf("  warm  /v1/predict %10.2f requests/s  (%zu in %.3fs)\n",
              warm_rps, warm_requests, warm_elapsed);
  std::printf("  warm  batch       %10.2f campaigns/s (%zu requests in %.3fs)\n",
              batch_cps, batch_requests, batch_elapsed);
  std::printf("  warm vs cold speedup: %.1fx (bar: >= 10x)\n", warm_speedup);
  std::printf("  warm hit rate: %.0f%%, no new compute: %s\n",
              100.0 * warm_hit_rate, no_new_compute ? "yes" : "NO");
  std::printf("  bit-identical through the wire: %s\n",
              identical ? "yes" : "NO");
  std::printf("  server: accepted=%llu served=%llu 4xx=%llu 5xx=%llu\n",
              static_cast<unsigned long long>(sstats.connections_accepted),
              static_cast<unsigned long long>(sstats.requests_served),
              static_cast<unsigned long long>(sstats.responses_4xx),
              static_cast<unsigned long long>(sstats.responses_5xx));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"net_throughput\",\n");
  std::fprintf(f, "  \"campaigns\": %d,\n", campaigns);
  std::fprintf(f, "  \"measured_points\": %d,\n", points);
  std::fprintf(f, "  \"target_cores\": %d,\n", target);
  std::fprintf(f, "  \"prediction_threads\": %d,\n", threads);
  std::fprintf(f, "  \"http_workers\": %d,\n", http_threads);
  std::fprintf(f, "  \"cold_requests_per_sec\": %.3f,\n", cold_rps);
  std::fprintf(f, "  \"warm_requests_per_sec\": %.3f,\n", warm_rps);
  std::fprintf(f, "  \"warm_batch_campaigns_per_sec\": %.3f,\n", batch_cps);
  std::fprintf(f, "  \"warm_speedup_vs_cold\": %.3f,\n", warm_speedup);
  std::fprintf(f, "  \"warm_hit_rate\": %.4f,\n", warm_hit_rate);
  std::fprintf(f, "  \"requests_served\": %llu,\n",
               static_cast<unsigned long long>(sstats.requests_served));
  std::fprintf(f, "  \"bit_identical_through_wire\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"speedup_bar_met\": %s\n", speedup_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());

  return (identical && hit_rate_ok && speedup_ok) ? 0 : 2;
}
