// Figure 5: the step-by-step intruder prediction example (Section 3.2).
//
//  (a)-(f) each stall category measured on one Opteron processor (12 cores),
//          fitted and extrapolated to 48 cores, compared to measurements;
//  (g)     total stalled cycles per core: decreases up to ~12 cores, then
//          increases -- the early slowdown signal;
//  (h)     the scaling-factor function;
//  (i)     predicted vs measured execution time.
// Also reproduces the Section 2.5 argument: extrapolating the *aggregate*
// backend counter misses the slowdown, like time extrapolation does.
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

int main() {
  bench::print_header(
      "Figure 5: intruder walkthrough (Opteron, measure 12 -> predict 48)");
  const auto machine = sim::opteron48();
  auto e = bench::run_experiment("intruder", machine, 12);

  const std::vector<int> marks = {1, 4, 8, 12, 16, 24, 32, 40, 48};
  std::printf("(a)-(f) stall categories: extrapolated vs measured totals\n");
  for (const auto& cp : e.estima.categories) {
    std::printf("\n  category: %s [%s], kernel %s (prefix %d, c=%d)\n",
                cp.name.c_str(),
                cp.domain == core::StallDomain::kSoftware ? "sw" : "hw",
                core::kernel_name(cp.extrapolation.best.type).c_str(),
                cp.extrapolation.chosen_prefix,
                cp.extrapolation.chosen_checkpoints);
    std::printf("  %-26s", "cores");
    for (int n : marks) std::printf(" %9d", n);
    std::printf("\n");
    bench::print_series("  extrapolated", marks,
                        bench::at_cores(e.estima.cores, cp.values, marks));
    for (const auto& cat : e.truth.categories) {
      if (cat.name == cp.name) {
        bench::print_series("  measured", marks,
                            bench::at_cores(e.truth.cores, cat.values, marks));
        break;
      }
    }
  }

  std::printf("\n(g) total stalled cycles per core\n");
  const auto spc_true = e.truth.stalls_per_core(false, true);
  bench::print_series("  extrapolated", marks,
                      bench::at_cores(e.estima.cores,
                                      e.estima.stalls_per_core, marks));
  bench::print_series("  measured", marks,
                      bench::at_cores(e.truth.cores, spc_true, marks));
  std::printf("  note: spc decreases up to ~12 cores, then increases -> the\n"
              "  slowdown is visible in fine-grain stalls before it shows in "
              "time.\n");

  std::printf("\n(h) scaling factor: kernel %s, corr(time,spc)=%.3f\n",
              core::kernel_name(e.estima.factor_fn.type).c_str(),
              e.estima.factor_correlation);

  std::printf("\n(i) execution time\n");
  bench::print_series("  predicted", marks,
                      bench::at_cores(e.estima.cores, e.estima.time_s, marks));
  bench::print_series("  measured", marks,
                      bench::at_cores(e.truth.cores, e.truth.time_s, marks));
  std::printf("  predicted best core count %d vs actual %d\n",
              e.estima_err.predicted_best_cores,
              e.estima_err.actual_best_cores);

  // Section 2.5 ablation: aggregate-counter extrapolation.
  core::PredictionConfig agg_cfg;
  agg_cfg.target_cores = sim::all_core_counts(machine);
  agg_cfg.aggregate_mode = true;
  auto agg = core::predict(e.measured, agg_cfg);
  const auto agg_err = core::evaluate_prediction(agg, e.truth);
  std::printf("\nSection 2.5 ablation (aggregate backend counter):\n");
  std::printf("  fine-grain stalls: max err %.1f%%, best cores %d\n",
              e.estima_err.max_pct, e.estima_err.predicted_best_cores);
  std::printf("  aggregate mode:    max err %.1f%%, best cores %d\n",
              agg_err.max_pct, agg.best_core_count());
  std::printf("  time extrapolation: max err %.1f%%, best cores %d\n",
              e.time_extrap_err.max_pct, e.time_extrap.best_core_count());
  return 0;
}
