// Figure 2: "Stalled cycles and execution time correlation".
//
// For intruder (STAMP) and blackscholes (PARSEC) on the 48-core Opteron,
// the paper reports a correlation of 1.00 between stalled cycles per core
// and execution time. This bench prints both series and the Pearson
// correlation for each application.
#include <cstdio>

#include "bench_util.hpp"
#include "numeric/stats.hpp"

using namespace estima;

int main() {
  bench::print_header(
      "Figure 2: stalls-per-core vs execution time (Opteron, full machine)");
  const std::vector<int> marks = {1, 4, 8, 12, 16, 24, 32, 40, 48};

  for (const char* name : {"intruder", "blackscholes"}) {
    const auto wl = sim::presets::workload(name);
    const auto m = sim::opteron48();
    const auto truth = sim::simulate(wl, m, sim::all_core_counts(m));
    const auto spc = truth.stalls_per_core(false, true);

    std::printf("\n--- %s ---\n", name);
    std::printf("%-28s", "cores");
    for (int n : marks) std::printf(" %9d", n);
    std::printf("\n");
    bench::print_series("execution time (s)", marks,
                        bench::at_cores(truth.cores, truth.time_s, marks));
    bench::print_series("stalled cycles per core", marks,
                        bench::at_cores(truth.cores, spc, marks));
    std::printf("correlation(stalls/core, time) = %.2f   (paper: 1.00)\n",
                numeric::pearson(spc, truth.time_s));
  }
  return 0;
}
