// Table 4: maximum prediction errors with measurements on one processor.
//
// Opteron: measure 12 cores, report the max error when predicting for 2, 3
// and 4 CPUs (24, 36, 48 cores). Xeon20: measure 10 cores (one socket),
// report the max error for the full machine (2 CPUs). Software stalls are
// used for the workloads the paper instruments.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

namespace {

// Max relative error over target cores in (lo, hi].
double max_err_between(const bench::Experiment& e, int lo, int hi) {
  double worst = 0.0;
  for (std::size_t i = 0; i < e.truth.cores.size(); ++i) {
    const int n = e.truth.cores[i];
    if (n <= lo || n > hi) continue;
    const double t = e.truth.time_s[i];
    const double p = e.estima.time_s[i];
    if (t > 0.0) worst = std::max(worst, 100.0 * std::fabs(p - t) / t);
  }
  return worst;
}

struct Row {
  std::string name;
  double opt2, opt3, opt4, xeon2;
};

}  // namespace

int main() {
  bench::print_header(
      "Table 4: max prediction errors, one-processor measurements");
  std::printf("%-18s %10s %10s %10s | %10s\n", "benchmark", "Opt 2CPU",
              "Opt 3CPU", "Opt 4CPU", "Xeon20 2CPU");

  std::vector<Row> rows;
  for (const auto& name : sim::presets::benchmark_workload_names()) {
    const bool sw = bench::reports_software_stalls(name);
    auto opt = bench::run_experiment(name, sim::opteron48(), 12, sw);
    auto xeon = bench::run_experiment(name, sim::xeon20(), 10, sw);
    Row r;
    r.name = name;
    r.opt2 = max_err_between(opt, 12, 24);
    r.opt3 = max_err_between(opt, 12, 36);
    r.opt4 = max_err_between(opt, 12, 48);
    r.xeon2 = max_err_between(xeon, 10, 20);
    std::printf("%-18s %9.1f%% %9.1f%% %9.1f%% | %9.1f%%\n", r.name.c_str(),
                r.opt2, r.opt3, r.opt4, r.xeon2);
    rows.push_back(std::move(r));
  }

  // Summary block like the bottom of Table 4.
  const auto summarize = [&](auto getter) {
    double sum = 0, sum2 = 0, mx = 0;
    for (const auto& r : rows) {
      const double v = getter(r);
      sum += v;
      sum2 += v * v;
      mx = std::max(mx, v);
    }
    const double n = static_cast<double>(rows.size());
    const double avg = sum / n;
    const double sd = std::sqrt(std::max(sum2 / n - avg * avg, 0.0));
    return std::array<double, 3>{avg, sd, mx};
  };
  const auto o2 = summarize([](const Row& r) { return r.opt2; });
  const auto o3 = summarize([](const Row& r) { return r.opt3; });
  const auto o4 = summarize([](const Row& r) { return r.opt4; });
  const auto x2 = summarize([](const Row& r) { return r.xeon2; });

  std::printf("%-18s %9.1f%% %9.1f%% %9.1f%% | %9.1f%%   (paper: 11.3 / 16.8 "
              "/ 17.7 / 17.7)\n",
              "Average", o2[0], o3[0], o4[0], x2[0]);
  std::printf("%-18s %9.1f%% %9.1f%% %9.1f%% | %9.1f%%   (paper: 11.2 / 15.0 "
              "/ 18.9 / 11.0)\n",
              "Std. Dev.", o2[1], o3[1], o4[1], x2[1]);
  std::printf("%-18s %9.1f%% %9.1f%% %9.1f%% | %9.1f%%   (paper: 50.3 / 59.0 "
              "/ 88.8 / 41.7)\n",
              "Max.", o2[2], o3[2], o4[2], x2[2]);

  // The paper's headline robustness claim: no scaling-verdict flips.
  int flips = 0;
  for (const auto& name : sim::presets::benchmark_workload_names()) {
    const bool sw = bench::reports_software_stalls(name);
    auto e = bench::run_experiment(name, sim::opteron48(), 12, sw);
    if (!e.estima_err.scaling_verdict_match) {
      ++flips;
      std::printf("VERDICT FLIP: %s (predicted best %d, actual best %d)\n",
                  name.c_str(), e.estima_err.predicted_best_cores,
                  e.estima_err.actual_best_cores);
    }
  }
  std::printf("\nscaling-verdict flips across all workloads: %d (paper: 0)\n",
              flips);
  return 0;
}
