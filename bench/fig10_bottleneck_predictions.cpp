// Figure 10 + Section 4.6: predictions for streamcluster and intruder with
// both hardware and software stalls, and the bottleneck identification that
// follows from the dominating stall categories.
//
// streamcluster: pthread-wrapper sync cycles dominate at scale -> the
//   PARSEC barrier mutexes are the future bottleneck.
// intruder: SwissTM aborted-transaction cycles dominate -> contention on
//   the shared reassembly structure.
#include <cstdio>

#include "bench_util.hpp"
#include "core/bottleneck.hpp"

using namespace estima;

int main() {
  bench::print_header(
      "Figure 10: hw+sw stall predictions and future bottlenecks (Opteron)");
  const std::vector<int> marks = {1, 4, 8, 12, 16, 24, 32, 40, 48};

  for (const char* name : {"streamcluster", "intruder"}) {
    auto e = bench::run_experiment(name, sim::opteron48(), 12,
                                   /*use_software=*/true);
    std::printf("\n--- %s ---\n", name);
    std::printf("%-28s", "cores");
    for (int n : marks) std::printf(" %9d", n);
    std::printf("\n");
    bench::print_series("predicted time (s)", marks,
                        bench::at_cores(e.estima.cores, e.estima.time_s,
                                        marks));
    bench::print_series("measured time (s)", marks,
                        bench::at_cores(e.truth.cores, e.truth.time_s, marks));
    std::printf("predicted best cores %d / actual %d\n",
                e.estima_err.predicted_best_cores,
                e.estima_err.actual_best_cores);

    auto report = core::analyze_bottlenecks(e.estima, e.measured, 48);
    std::printf("\n%s", report.to_string().c_str());
    std::printf("=> dominant predicted category: %s\n",
                report.entries.front().category.c_str());
  }
  std::printf(
      "\npaper: pthread_mutex_trylock stalls dominate streamcluster;\n"
      "aborted STM transactions in processPackets dominate intruder.\n");
  return 0;
}
