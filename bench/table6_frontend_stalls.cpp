// Table 6: does adding frontend stalls to the backend stalls improve the
// correlation with execution time? (Section 5.2)
//
// The paper finds the average improvement close to zero or negative --
// frontend stalls carry no extra scalability information and can hurt
// (down to -14.79%) -- confirming the backend-only design decision.
#include <cstdio>

#include "bench_util.hpp"
#include "numeric/stats.hpp"

using namespace estima;

int main() {
  bench::print_header(
      "Table 6: frontend+backend vs backend-only correlation delta (%)");
  const std::vector<sim::MachineSpec> machines = {
      sim::opteron48(), sim::xeon20(), sim::xeon48()};
  std::printf("%-18s %10s %10s %10s\n", "benchmark", "Opteron", "Xeon20",
              "Xeon48");

  std::vector<std::array<double, 3>> all;
  for (const auto& name : sim::presets::benchmark_workload_names()) {
    std::array<double, 3> row{};
    for (std::size_t mi = 0; mi < machines.size(); ++mi) {
      const auto& m = machines[mi];
      const auto truth = sim::simulate(sim::presets::workload(name), m,
                                       sim::all_core_counts(m));
      const auto spc_be = truth.stalls_per_core(false, true);
      const auto spc_fe = truth.stalls_per_core(true, true);
      const double c_be = numeric::pearson(spc_be, truth.time_s);
      const double c_fe = numeric::pearson(spc_fe, truth.time_s);
      row[mi] = 100.0 * (c_fe - c_be);
    }
    std::printf("%-18s %+10.2f %+10.2f %+10.2f\n", name.c_str(), row[0],
                row[1], row[2]);
    all.push_back(row);
  }

  std::printf("%-18s", "Average");
  for (int mi = 0; mi < 3; ++mi) {
    std::vector<double> col;
    for (const auto& row : all) col.push_back(row[mi]);
    std::printf(" %+10.2f", numeric::mean(col));
  }
  std::printf("\n\npaper: averages +0.87 / -1.38 / -0.08 -- frontend stalls "
              "add no information.\n");
  return 0;
}
