// End-to-end predict() throughput microbenchmark.
//
// Tracks the perf trajectory of the fitting hot path: a production-scale
// predictor reruns the candidate-enumeration loop (Section 3.1) for many
// applications, so the pipeline's own speed is a first-class metric. Four
// modes are measured (all four produce bit-identical predictions):
//   baseline  — memoization off, reference scalar fit engine, no pool:
//               one fit_kernel call per candidate, exactly the
//               pre-optimization pipeline shape;
//   scalar    — memoized (kernel, prefix) fits, still the reference
//               engine: isolates the caching win from the SoA win;
//   memoized  — memoized + the batched SoA engine (lockstep multi-LM,
//               panel realism walks), single-threaded;
//   parallel  — memoized + batched + fit/category fan-out across a pool.
//
// Reports predictions/sec, fits/sec and LM kernel point-evals/sec per
// mode, the duplicate-fits-eliminated counter, and a bit-identical
// cross-check of single- vs multi-threaded output, as JSON to
// BENCH_fit_throughput.json (and human-readable text to stdout).
//
// Flags:
//   --seconds=S   measurement window per mode       (default 2.0)
//   --threads=N   pool size for the parallel mode   (default: hardware)
//   --points=M    measured core counts 1..M         (default 14)
//   --target=T    extrapolation horizon             (default 64)
//   --ckmax=C     checkpoint settings swept, 1..C   (default 5)
//   --out=PATH    JSON output path                  (default BENCH_fit_throughput.json)
//   --mode=NAME   restrict to baseline|scalar|memoized|parallel (default: all)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/predictor.hpp"
#include "parallel/thread_pool.hpp"
#include "tests/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using estima::bench::bit_identical;
using estima::bench::parse_flag_d;
using estima::bench::parse_flag_s;

struct ModeResult {
  std::string name;
  double predictions_per_sec = 0.0;
  int iterations = 0;
  double seconds = 0.0;
  std::size_t fits_executed = 0;
  std::size_t duplicate_fits_eliminated = 0;
  std::size_t candidates_considered = 0;
  std::size_t levmar_point_evals = 0;
  estima::bench::LatencyRecorder latency;  ///< one sample per predict()
};

estima::core::PredictionConfig make_config(int target, int ckmax,
                                           bool memoize,
                                           estima::core::FitEngine engine,
                                           estima::parallel::ThreadPool* pool) {
  estima::core::PredictionConfig cfg;
  cfg.target_cores = estima::core::cores_up_to(target);
  // A production-style sweep over checkpoint settings 1..ckmax: the fit of
  // a (kernel, prefix) pair is shared by all of them, which is exactly
  // what the memoization exploits.
  cfg.extrap.checkpoint_counts.clear();
  for (int c = 1; c <= ckmax; ++c) cfg.extrap.checkpoint_counts.push_back(c);
  cfg.extrap.memoize_fits = memoize;
  cfg.extrap.engine = engine;
  cfg.extrap.pool = pool;
  return cfg;
}

// Sums the per-category fit accounting of one prediction (plus the
// scaling-factor enumeration, which runs the same fit machinery).
void accumulate_stats(const estima::core::Prediction& pred, ModeResult* r) {
  r->fits_executed = 0;
  r->duplicate_fits_eliminated = 0;
  r->candidates_considered = 0;
  r->levmar_point_evals = pred.factor_stats.levmar_point_evals;
  for (const auto& cp : pred.categories) {
    r->fits_executed += cp.extrapolation.fits_executed;
    r->duplicate_fits_eliminated += cp.extrapolation.duplicate_fits_eliminated;
    r->candidates_considered += cp.extrapolation.candidates_considered;
    r->levmar_point_evals += cp.extrapolation.levmar_point_evals;
  }
}

ModeResult run_mode(const std::string& name,
                    const estima::core::MeasurementSet& ms,
                    const estima::core::PredictionConfig& cfg,
                    double seconds) {
  ModeResult r;
  r.name = name;
  // Warm-up: thread-local LM workspaces, allocator pools, page faults.
  auto pred = estima::core::predict(ms, cfg);
  accumulate_stats(pred, &r);

  double sink = 0.0;  // defeat dead-code elimination
  const auto start = Clock::now();
  int iters = 0;
  for (;;) {
    const auto op_start = Clock::now();
    const auto p = estima::core::predict(ms, cfg);
    r.latency.record(op_start, Clock::now());
    sink += p.time_s.back();
    ++iters;
    const double el =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (el >= seconds && iters >= 3) {
      r.seconds = el;
      break;
    }
  }
  r.iterations = iters;
  r.predictions_per_sec = iters / r.seconds;
  if (!std::isfinite(sink)) std::printf("(non-finite sink)\n");
  return r;
}

}  // namespace

int run_bench(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_bench(argc, argv);
  } catch (const std::exception& e) {
    // Degenerate flag combinations (e.g. too few measured points for any
    // checkpoint setting) surface as predict() exceptions; report cleanly.
    std::fprintf(stderr, "fit_throughput: %s\n", e.what());
    return 1;
  }
}

int run_bench(int argc, char** argv) {
  const double seconds = parse_flag_d(argc, argv, "seconds", 2.0);
  const int points = static_cast<int>(parse_flag_d(argc, argv, "points", 14));
  const int target = static_cast<int>(parse_flag_d(argc, argv, "target", 64));
  const int ckmax = static_cast<int>(parse_flag_d(argc, argv, "ckmax", 5));
  const unsigned hw = std::thread::hardware_concurrency();
  const int threads = static_cast<int>(
      parse_flag_d(argc, argv, "threads", hw > 0 ? static_cast<double>(hw) : 1.0));
  const std::string out_path =
      parse_flag_s(argc, argv, "out", "BENCH_fit_throughput.json");
  const std::string only_mode = parse_flag_s(argc, argv, "mode", "all");
  if (only_mode != "all" && only_mode != "baseline" && only_mode != "scalar" &&
      only_mode != "memoized" && only_mode != "parallel") {
    std::fprintf(
        stderr,
        "unknown --mode=%s (expected all|baseline|scalar|memoized|parallel)\n",
        only_mode.c_str());
    return 1;
  }

  // A three-category synthetic campaign (two hardware series + software
  // aborts) with mild contention growth and noise — representative of the
  // paper's STAMP-style inputs.
  estima::testing::SyntheticSpec spec;
  spec.stm_rate = 1e-4;
  spec.noise = 0.02;
  const auto ms =
      estima::testing::make_synthetic(spec, estima::testing::counts_up_to(points));

  estima::parallel::ThreadPool pool(static_cast<std::size_t>(
      threads > 0 ? threads : 1));

  std::printf("fit_throughput: %d measured points, horizon %d cores, "
              "%d pool threads, %.1fs per mode\n",
              points, target, threads, seconds);

  using estima::core::FitEngine;
  std::vector<ModeResult> results;
  const bool all = only_mode == "all";
  if (all || only_mode == "baseline") {
    results.push_back(run_mode(
        "baseline", ms,
        make_config(target, ckmax, false, FitEngine::kReference, nullptr),
        seconds));
  }
  if (all || only_mode == "scalar") {
    results.push_back(run_mode(
        "scalar", ms,
        make_config(target, ckmax, true, FitEngine::kReference, nullptr),
        seconds));
  }
  if (all || only_mode == "memoized") {
    results.push_back(run_mode(
        "memoized", ms,
        make_config(target, ckmax, true, FitEngine::kBatched, nullptr),
        seconds));
  }
  if (all || only_mode == "parallel") {
    results.push_back(run_mode(
        "parallel", ms,
        make_config(target, ckmax, true, FitEngine::kBatched, &pool),
        seconds));
  }

  for (const auto& r : results) {
    const auto ls = r.latency.stats();
    std::printf("  %-9s %8.2f predictions/s  (%d iters in %.2fs)  "
                "fits=%zu dup_eliminated=%zu\n",
                r.name.c_str(), r.predictions_per_sec, r.iterations,
                r.seconds, r.fits_executed, r.duplicate_fits_eliminated);
    std::printf("  %-9s %8.0f fits/s  %.3g LM point-evals/s\n", "",
                static_cast<double>(r.fits_executed) * r.predictions_per_sec,
                static_cast<double>(r.levmar_point_evals) *
                    r.predictions_per_sec);
    std::printf("  %-9s latency p50 %.3fms p90 %.3fms p99 %.3fms "
                "p999 %.3fms\n",
                "", ls.p50_ms, ls.p90_ms, ls.p99_ms, ls.p999_ms);
  }

  const ModeResult* baseline = nullptr;
  const ModeResult* fastest = nullptr;
  for (const auto& r : results) {
    if (r.name == "baseline") baseline = &r;
    if (!fastest || r.predictions_per_sec > fastest->predictions_per_sec) {
      fastest = &r;
    }
  }
  double speedup = 0.0;
  if (baseline && fastest && baseline->predictions_per_sec > 0.0) {
    speedup = fastest->predictions_per_sec / baseline->predictions_per_sec;
    std::printf("  end-to-end speedup (%s vs baseline): %.2fx\n",
                fastest->name.c_str(), speedup);
  }

  // Determinism cross-check: single-threaded vs pooled prediction must
  // agree bit-for-bit.
  const auto serial = estima::core::predict(
      ms, make_config(target, ckmax, true, FitEngine::kBatched, nullptr));
  const auto pooled = estima::core::predict(
      ms, make_config(target, ckmax, true, FitEngine::kBatched, &pool));
  const bool identical = bit_identical(serial, pooled);
  std::printf("  1-thread vs %d-thread output bit-identical: %s\n", threads,
              identical ? "yes" : "NO");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  estima::obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "fit_throughput");
  w.kv("measured_points", points);
  w.kv("target_cores", target);
  w.kv("pool_threads", threads);
  w.kv("checkpoint_settings_max", ckmax);
  w.begin_object("modes");
  for (const auto& r : results) {
    w.begin_object(r.name);
    w.kv("predictions_per_sec", r.predictions_per_sec, 3);
    w.kv("iterations", r.iterations);
    w.kv("seconds", r.seconds, 3);
    w.kv("fits_executed", static_cast<std::uint64_t>(r.fits_executed));
    w.kv("duplicate_fits_eliminated",
         static_cast<std::uint64_t>(r.duplicate_fits_eliminated));
    w.kv("candidates_considered",
         static_cast<std::uint64_t>(r.candidates_considered));
    w.kv("fits_per_sec",
         static_cast<double>(r.fits_executed) * r.predictions_per_sec, 1);
    w.kv("kernel_evals_per_sec",
         static_cast<double>(r.levmar_point_evals) * r.predictions_per_sec, 1);
    estima::bench::write_latency_json(w, "latency", r.latency);
    w.end_object();
  }
  w.end_object();
  w.kv("end_to_end_speedup_vs_baseline", speedup, 3);
  w.kv("multithreaded_bit_identical", identical);
  w.end_object();
  std::fputs(w.str().c_str(), f);
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());

  return identical ? 0 : 2;
}
