// Figure 12: the two low-correlation cases of Table 5 -- execution time and
// stalled cycles per core for the lock-based hash table on Xeon20 and the
// lock-free skip list on Xeon48 (Section 5.1).
//
// The curves track each other; the correlation is dragged down by
// core-to-core jitter that is not synchronised between the two series, and
// ESTIMA still extrapolates both correctly (Table 4).
#include <cstdio>

#include "bench_util.hpp"
#include "numeric/stats.hpp"

using namespace estima;

namespace {

void show(const char* name, const sim::MachineSpec& m,
          const std::vector<int>& marks) {
  const auto truth = sim::simulate(sim::presets::workload(name), m,
                                   sim::all_core_counts(m));
  const auto spc = truth.stalls_per_core(false, true);
  std::printf("\n--- %s on %s ---\n", name, m.name.c_str());
  std::printf("%-28s", "cores");
  for (int n : marks) std::printf(" %9d", n);
  std::printf("\n");
  bench::print_series("execution time (s)", marks,
                      bench::at_cores(truth.cores, truth.time_s, marks));
  bench::print_series("stalled cycles per core", marks,
                      bench::at_cores(truth.cores, spc, marks));
  std::printf("correlation = %.2f\n", numeric::pearson(spc, truth.time_s));
}

}  // namespace

int main() {
  bench::print_header("Figure 12: the low-correlation microbenchmarks");
  show("lock-based-ht", sim::xeon20(), {1, 2, 4, 8, 12, 16, 20});
  show("lock-free-sl", sim::xeon48(), {1, 4, 8, 16, 24, 32, 40, 48});
  std::printf("\npaper: correlations 0.66 and 0.70; the curves still have\n"
              "similar shapes and ESTIMA extrapolates both accurately.\n");
  return 0;
}
