// Warm-restart benchmark: campaigns/sec served by a freshly started
// service, cold vs restored from a ResultCache snapshot.
//
// The production scenario: the serving process dies (deploy, crash,
// reschedule) and comes back. Without persistence every repeat query pays
// a full predict(); with PR 3's snapshot the restarted process reloads its
// cache and answers instantly. Three rates are measured:
//   cold serial — one core::predict() per campaign on a fresh process
//                 (what every restart used to cost);
//   restore     — one-time snapshot load (reported, not gated);
//   restored-warm — predict_many() on a *new* service warmed purely from
//                 the snapshot written by the first service.
// Gates (exit 2 on violation):
//   * the restored service recomputes nothing and misses nothing
//     (100% hit rate on previously-seen campaigns);
//   * its answers are bit-identical to the pre-restart serial reference;
//   * restored-warm throughput >= 10x cold serial.
//
// Reports JSON to BENCH_restart_warm.json (and text to stdout).
//
// Flags:
//   --campaigns=C   distinct campaigns                (default 8)
//   --repeat=R      copies of each campaign per batch (default 4)
//   --threads=N     pool size                         (default: hardware)
//   --points=M      measured core counts 1..M         (default 12)
//   --target=T      extrapolation horizon             (default 48)
//   --warm-seconds=S  minimum warm measurement window (default 0.5)
//   --snapshot=PATH snapshot file (default BENCH_restart_warm.snapshot)
//   --out=PATH      JSON output path (default BENCH_restart_warm.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/predictor.hpp"
#include "parallel/thread_pool.hpp"
#include "service/prediction_service.hpp"
#include "tests/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using estima::bench::bit_identical;
using estima::bench::parse_flag_d;
using estima::bench::parse_flag_s;

estima::core::MeasurementSet make_campaign(int seed, int points) {
  estima::testing::SyntheticSpec spec;
  spec.mem_rate = 0.25 + 0.02 * (seed % 7);
  spec.serial_frac = 0.005 + 0.0015 * (seed % 5);
  spec.stm_rate = seed % 2 ? 1e-4 : 0.0;
  spec.noise = 0.02;
  return estima::testing::make_synthetic(
      spec, estima::testing::counts_up_to(points),
      ("restart-campaign-" + std::to_string(seed)).c_str());
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int run_bench(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_bench(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "restart_warm: %s\n", e.what());
    return 1;
  }
}

int run_bench(int argc, char** argv) {
  const int campaigns =
      static_cast<int>(parse_flag_d(argc, argv, "campaigns", 8));
  const int repeat = static_cast<int>(parse_flag_d(argc, argv, "repeat", 4));
  const int points = static_cast<int>(parse_flag_d(argc, argv, "points", 12));
  const int target = static_cast<int>(parse_flag_d(argc, argv, "target", 48));
  const double warm_seconds = parse_flag_d(argc, argv, "warm-seconds", 0.5);
  const int threads = static_cast<int>(parse_flag_d(
      argc, argv, "threads",
      static_cast<double>(estima::parallel::ThreadPool::hardware_threads())));
  const std::string snapshot_path =
      parse_flag_s(argc, argv, "snapshot", "BENCH_restart_warm.snapshot");
  const std::string out_path =
      parse_flag_s(argc, argv, "out", "BENCH_restart_warm.json");

  std::vector<estima::core::MeasurementSet> uniques;
  for (int i = 0; i < campaigns; ++i) {
    uniques.push_back(make_campaign(i, points));
  }
  std::vector<estima::core::MeasurementSet> batch;
  for (int r = 0; r < repeat; ++r) {
    for (const auto& u : uniques) batch.push_back(u);
  }

  estima::core::PredictionConfig cfg;
  cfg.target_cores = estima::core::cores_up_to(target);

  std::printf("restart_warm: %d campaigns x%d per batch, horizon %d, "
              "%d pool threads\n",
              campaigns, repeat, target, threads);

  // Cold serial reference: what a restarted process without persistence
  // pays per campaign, and the bit-identity baseline.
  std::vector<estima::core::Prediction> serial;
  const auto serial_start = Clock::now();
  for (const auto& u : uniques) {
    serial.push_back(estima::core::predict(u, cfg));
  }
  const double serial_elapsed = seconds_since(serial_start);
  const double cold_cps = campaigns / serial_elapsed;

  estima::parallel::ThreadPool pool(
      static_cast<std::size_t>(threads > 0 ? threads : 1));
  estima::service::ServiceConfig scfg;
  scfg.prediction = cfg;
  // Headroom against shard-capacity skew, as in serve_throughput: the
  // 100%-hit-rate gate must only ever fail for real bugs.
  scfg.cache_capacity = static_cast<std::size_t>(64 * campaigns);

  // "Yesterday's" process: populate the cache, spill it to disk.
  estima::service::PredictionService before_restart(scfg, &pool);
  before_restart.predict_many(batch);
  const auto written = before_restart.snapshot_to(snapshot_path);
  std::printf("  snapshot: %zu entries -> %s\n", written.entries_written,
              snapshot_path.c_str());

  // "Today's" process: a fresh service warmed only from the snapshot.
  estima::service::PredictionService service(scfg, &pool);
  const auto restore_start = Clock::now();
  const auto restore_report = service.restore_from(snapshot_path);
  const double restore_elapsed = seconds_since(restore_start);
  const auto after_restore = service.stats();

  // Warm passes against the restored cache; per-batch latency feeds the
  // reported percentiles.
  estima::bench::LatencyRecorder warm_lat;
  int warm_batches = 0;
  std::size_t warm_campaigns_served = 0;
  std::vector<estima::core::Prediction> warm_out;
  const auto warm_start = Clock::now();
  double warm_elapsed = 0.0;
  for (;;) {
    const auto batch_t0 = Clock::now();
    warm_out = service.predict_many(batch);
    warm_lat.record(batch_t0, Clock::now());
    ++warm_batches;
    warm_campaigns_served += batch.size();
    warm_elapsed = seconds_since(warm_start);
    if (warm_elapsed >= warm_seconds && warm_batches >= 2) break;
  }
  const double warm_cps = warm_campaigns_served / warm_elapsed;
  const auto after_warm = service.stats();

  // Gates.
  const bool restore_complete =
      restore_report.entries_loaded() ==
          static_cast<std::size_t>(campaigns) &&
      restore_report.skipped.empty() && !restore_report.truncated;
  const bool all_hits =
      after_warm.cache.misses == after_restore.cache.misses &&
      after_warm.predictions_computed == 0;
  bool identical = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& want = serial[i % static_cast<std::size_t>(campaigns)];
    if (!bit_identical(warm_out[i], want)) {
      identical = false;
      break;
    }
  }
  const double warm_speedup = warm_cps / cold_cps;
  const bool speedup_ok = warm_speedup >= 10.0;

  std::printf("  cold serial      %10.2f campaigns/s  (%d campaigns in %.3fs)\n",
              cold_cps, campaigns, serial_elapsed);
  std::printf("  restore          %zu entries in %.4fs (%zu skipped)\n",
              restore_report.entries_loaded(), restore_elapsed,
              restore_report.skipped.size());
  std::printf("  restored-warm    %10.2f campaigns/s  (%zu campaigns in %.3fs)\n",
              warm_cps, warm_campaigns_served, warm_elapsed);
  std::printf("  restored-warm vs cold speedup: %.1fx (bar: >= 10x)\n",
              warm_speedup);
  std::printf("  restore complete: %s, all hits (0 recomputes, 0 misses): %s\n",
              restore_complete ? "yes" : "NO", all_hits ? "yes" : "NO");
  std::printf("  bit-identical to pre-restart serial predict(): %s\n",
              identical ? "yes" : "NO");
  std::printf("  service: restored=%llu skipped=%llu hits=%llu misses=%llu\n",
              static_cast<unsigned long long>(
                  after_warm.snapshot_entries_restored),
              static_cast<unsigned long long>(
                  after_warm.snapshot_entries_skipped),
              static_cast<unsigned long long>(after_warm.cache.hits),
              static_cast<unsigned long long>(after_warm.cache.misses));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  estima::obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "restart_warm");
  w.kv("campaigns", campaigns);
  w.kv("repeat_per_batch", repeat);
  w.kv("measured_points", points);
  w.kv("target_cores", target);
  w.kv("pool_threads", threads);
  w.kv("cold_serial_campaigns_per_sec", cold_cps, 3);
  w.kv("restore_seconds", restore_elapsed, 6);
  w.kv("entries_restored",
       static_cast<std::uint64_t>(restore_report.entries_loaded()));
  w.kv("entries_skipped",
       static_cast<std::uint64_t>(restore_report.skipped.size()));
  w.kv("restored_warm_campaigns_per_sec", warm_cps, 3);
  w.kv("restored_warm_speedup_vs_cold", warm_speedup, 3);
  estima::bench::write_latency_json(w, "warm_batch_latency", warm_lat);
  w.kv("restore_complete", restore_complete);
  w.kv("all_hits_after_restore", all_hits);
  w.kv("bit_identical_to_serial", identical);
  w.kv("speedup_bar_met", speedup_ok);
  w.end_object();
  std::fputs(w.str().c_str(), f);
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());

  std::remove(snapshot_path.c_str());
  return (restore_complete && all_hits && identical && speedup_ok) ? 0 : 2;
}
