// Throwaway-style debugging aid kept out of the paper benches: dumps the
// simulated series and the per-category extrapolations for one workload.
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "numeric/stats.hpp"

using namespace estima;

int main(int argc, char** argv) {
  const std::string wl_name = argc > 1 ? argv[1] : "intruder";
  const std::string machine_name = argc > 2 ? argv[2] : "opteron48";
  const int measure = argc > 3 ? std::atoi(argv[3]) : 0;

  const auto m = sim::machine_by_name(machine_name);
  const int mc = measure > 0 ? measure : m.cores_per_socket();
  auto e = bench::run_experiment(wl_name, m, mc);

  std::printf("workload=%s machine=%s measured=%d\n", wl_name.c_str(),
              machine_name.c_str(), mc);
  std::printf("%5s %10s %10s %10s %12s %12s\n", "n", "time", "pred",
              "timex", "spc_true", "spc_pred");
  const auto spc_true = e.truth.stalls_per_core(false, true);
  for (std::size_t i = 0; i < e.truth.cores.size(); ++i) {
    std::printf("%5d %10.4f %10.4f %10.4f %12.4g %12.4g\n",
                e.truth.cores[i], e.truth.time_s[i], e.estima.time_s[i],
                e.time_extrap.time_s[i], spc_true[i],
                e.estima.stalls_per_core[i]);
  }
  std::printf("\nfactor fn kernel=%s corr=%.3f\n",
              core::kernel_name(e.estima.factor_fn.type).c_str(),
              e.estima.factor_correlation);
  for (const auto& cp : e.estima.categories) {
    std::printf("category %-44s kernel=%-8s prefix=%d c=%d\n",
                cp.name.c_str(),
                core::kernel_name(cp.extrapolation.best.type).c_str(),
                cp.extrapolation.chosen_prefix,
                cp.extrapolation.chosen_checkpoints);
  }
  const auto corr =
      numeric::pearson(spc_true, e.truth.time_s);
  std::printf("truth corr(spc,time)=%.3f  est_err=%.1f%%  timex_err=%.1f%%\n",
              corr, e.estima_err.max_pct, e.time_extrap_err.max_pct);
  return 0;
}
