// Figure 6: memcached and SQLite/TPC-C predictions (Section 4.3).
//
// Measurements are taken on the 4-core Haswell desktop and extrapolated to
// the 20-core Xeon20 server, scaling the measured times by the
// clock-frequency ratio. The paper reports errors below 30% for memcached
// (measured on 3 threads; clients used the remaining contexts) and below
// 26% for SQLite (4 threads), with the "stops scaling" point predicted
// correctly.
//
// Deviation: we measure memcached on 4 desktop threads instead of 3. Our
// in-process load generator does not compete for the measurement cores the
// way the paper's co-located clients did, and 3-point campaigns leave the
// kernel selection under-determined (fits use 2-point prefixes, which
// cannot encode accelerating contention). EXPERIMENTS.md discusses this.
#include <cstdio>

#include "bench_util.hpp"

using namespace estima;

namespace {

void run_one(const char* workload, int measure_threads) {
  const auto desktop = sim::haswell4();
  const auto server = sim::xeon20();

  // Tiny campaigns need the relaxed approximation settings: prefixes from
  // 2 points and a single checkpoint (Section 3.1.2 machinery, scaled to
  // "minimum input from the user").
  core::ExtrapolationConfig relaxed;
  relaxed.min_prefix = 2;
  relaxed.checkpoint_counts = {1, 2};

  std::vector<int> counts;
  for (int i = 1; i <= measure_threads; ++i) counts.push_back(i);

  auto e = bench::run_cross_experiment(workload, desktop, counts, server,
                                       /*use_software=*/false, &relaxed);

  const std::vector<int> marks = {1, 2, 4, 6, 8, 10, 12, 16, 20};
  std::printf("\n--- %s: Haswell desktop (%d threads) -> Xeon20 ---\n",
              workload, measure_threads);
  std::printf("freq scale applied: %.3f (desktop %.1f GHz / server %.1f GHz)\n",
              e.estima.freq_scale, desktop.freq_ghz, server.freq_ghz);
  std::printf("%-28s", "cores");
  for (int n : marks) std::printf(" %9d", n);
  std::printf("\n");
  bench::print_series("predicted time (s)", marks,
                      bench::at_cores(e.estima.cores, e.estima.time_s, marks));
  bench::print_series("measured on server (s)", marks,
                      bench::at_cores(e.truth.cores, e.truth.time_s, marks));
  for (const auto& cp : e.estima.categories) {
    std::printf("  category %-46s -> %s (prefix %d, c=%d)\n", cp.name.c_str(),
                core::kernel_name(cp.extrapolation.best.type).c_str(),
                cp.extrapolation.chosen_prefix,
                cp.extrapolation.chosen_checkpoints);
  }
  std::printf("max error %.1f%%  mean error %.1f%%\n", e.estima_err.max_pct,
              e.estima_err.mean_pct);
  std::printf("predicted best core count %d vs actual %d (verdict match: %s)\n",
              e.estima_err.predicted_best_cores,
              e.estima_err.actual_best_cores,
              e.estima_err.scaling_verdict_match ? "yes" : "NO");
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 6: production applications, desktop -> server (Section 4.3)");
  run_one("memcached", 4);   // paper: 3 threads, errors below 30%
  run_one("sqlite-tpcc", 4); // paper: errors below 26%
  std::printf(
      "\npaper: errors below 30%% (memcached) and 26%% (SQLite); both stop\n"
      "scaling on the server and ESTIMA predicts where.\n");
  return 0;
}
