// Table 5: correlation of stalled cycles per core with execution time over
// the full machines (Section 5.1).
//
// The paper's numbers are >= 0.95 for the vast majority of cases, with
// outliers for the lock-based hash table (0.66 on Xeon20) and lock-free
// skip list (0.70 on Xeon48). Software stalls are included for the
// workloads the paper instruments.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "numeric/stats.hpp"

using namespace estima;

int main() {
  bench::print_header(
      "Table 5: correlation of stalls-per-core with time (full machines)");
  const std::vector<sim::MachineSpec> machines = {
      sim::opteron48(), sim::xeon20(), sim::xeon48()};
  std::printf("%-18s %10s %10s %10s\n", "benchmark", "Opteron", "Xeon20",
              "Xeon48");

  std::vector<std::array<double, 3>> all;
  for (const auto& name : sim::presets::benchmark_workload_names()) {
    std::array<double, 3> row{};
    for (std::size_t mi = 0; mi < machines.size(); ++mi) {
      const auto& m = machines[mi];
      const auto truth = sim::simulate(sim::presets::workload(name), m,
                                       sim::all_core_counts(m));
      const auto spc = truth.stalls_per_core(false, true);
      row[mi] = numeric::pearson(spc, truth.time_s);
    }
    std::printf("%-18s %10.2f %10.2f %10.2f\n", name.c_str(), row[0], row[1],
                row[2]);
    all.push_back(row);
  }

  for (int stat = 0; stat < 3; ++stat) {
    const char* label = stat == 0 ? "Average" : stat == 1 ? "Std. Dev." : "Min.";
    std::printf("%-18s", label);
    for (int mi = 0; mi < 3; ++mi) {
      std::vector<double> col;
      for (const auto& row : all) col.push_back(row[mi]);
      double v = 0.0;
      if (stat == 0) v = numeric::mean(col);
      else if (stat == 1) v = numeric::stddev(col);
      else v = *std::min_element(col.begin(), col.end());
      std::printf(" %10.2f", v);
    }
    std::printf("\n");
  }
  std::printf("\npaper: Average 0.93 / 0.97 / 0.94, Std 0.11 / 0.08 / 0.09, "
              "Min 0.62 / 0.66 / 0.70\n");
  return 0;
}
