#!/usr/bin/env bash
# CI gate: the SoA fitting hot loops must stay compiler-vectorizable.
#
# Compiles src/core/kernels.cpp alone with -O3 -fopt-info-vec-optimized and
# asserts that every hot panel/batch function still contains at least one
# loop the auto-vectorizer accepted. The point is to catch the easy
# regression: someone adds a branch, an aliasing store or a libm call to a
# panel loop and the whole SoA layout silently degrades to scalar code.
#
# exprat_panel is deliberately NOT on the list: its exp() call is a libm
# scalar call and gcc will not vectorize it without -ffast-math/libmvec,
# which the bit-identity contract forbids.
#
# Usage: tools/check_vectorization.sh [compiler]   (default: g++)
set -u

CXX="${1:-g++}"
cd "$(dirname "$0")/.."
SRC=src/core/kernels.cpp

REPORT=$("$CXX" -O3 -std=c++20 -Isrc -fopt-info-vec-optimized \
         -c "$SRC" -o /dev/null 2>&1)
STATUS=$?
if [ $STATUS -ne 0 ]; then
  echo "$REPORT"
  echo "check_vectorization: $SRC failed to compile" >&2
  exit $STATUS
fi

# Line numbers of loops the vectorizer accepted.
VEC_LINES=$(printf '%s\n' "$REPORT" |
  sed -n "s|.*kernels\.cpp:\([0-9]*\):[0-9]*: optimized: loop vectorized.*|\1|p" |
  sort -n -u)
if [ -z "$VEC_LINES" ]; then
  printf '%s\n' "$REPORT"
  echo "check_vectorization: no vectorized loops reported at all" >&2
  exit 1
fi

# Every SoA hot function must contain at least one vectorized loop. A
# function's range is [its definition line, the next top-level definition).
HOT_FUNCS="rat22_panel rat23_panel rat33_panel cubicln_panel poly25_panel \
kernel_eval_batch kernel_eval_panel_v kernel_denominator_batch \
kernel_denominator_panel"

DEF_LINES=$(grep -n '^[A-Za-z_][A-Za-z_0-9:<>& ]*(\|^[A-Za-z_][A-Za-z_0-9:<>& ]* [A-Za-z_]' "$SRC" |
  grep -v ';$' | cut -d: -f1)

fail=0
for fn in $HOT_FUNCS; do
  start=$(grep -n "^[a-z].* ${fn}(" "$SRC" | head -1 | cut -d: -f1)
  if [ -z "$start" ]; then
    echo "FAIL  $fn: definition not found in $SRC" >&2
    fail=1
    continue
  fi
  end=$(printf '%s\n' "$DEF_LINES" | awk -v s="$start" '$1 > s { print; exit }')
  [ -z "$end" ] && end=1000000
  hit=$(printf '%s\n' "$VEC_LINES" |
    awk -v s="$start" -v e="$end" '$1 >= s && $1 < e { print; exit }')
  if [ -z "$hit" ]; then
    echo "FAIL  $fn (lines $start..$end): no vectorized loop" >&2
    fail=1
  else
    echo "ok    $fn: loop at line $hit vectorized"
  fi
done

if [ $fail -ne 0 ]; then
  echo "check_vectorization: a hot SoA loop stopped vectorizing" >&2
  echo "full vectorizer report:" >&2
  printf '%s\n' "$REPORT" >&2
  exit 1
fi
echo "check_vectorization: all hot loops vectorize"
