// The Section 4.6 story as a runnable example: predict intruder and
// streamcluster on the big machine, rank the stall categories that will
// dominate, apply the suggested fixes (spinlocks / batched decoding) and
// show the improvement.
#include <cstdio>
#include <string>
#include <vector>

#include "core/bottleneck.hpp"
#include "core/predictor.hpp"
#include "simmachine/machine.hpp"
#include "simmachine/presets.hpp"
#include "simmachine/simulator.hpp"

int main() {
  using namespace estima;
  const auto machine = sim::opteron48();

  for (const char* name : {"streamcluster", "intruder"}) {
    const auto wl = sim::presets::workload(name);
    // streamcluster's sync blow-up starts past one socket (the paper's
    // Fig 15 limitation), so measure it on two sockets; intruder's abort
    // trend is already visible on one.
    const int measure =
        std::string(name) == "streamcluster" ? 24 : machine.cores_per_socket();
    std::vector<int> counts;
    for (int i = 1; i <= measure; ++i) counts.push_back(i);
    const auto measured = sim::simulate(wl, machine, counts);

    core::PredictionConfig cfg;
    cfg.target_cores = sim::all_core_counts(machine);
    const auto pred = core::predict(measured, cfg);

    std::printf("\n=== %s ===\n", name);
    std::printf("predicted best core count: %d of %d\n",
                pred.best_core_count(), machine.total_cores());
    const auto report = core::analyze_bottlenecks(pred, measured, 48);
    std::printf("%s", report.to_string().c_str());

    const auto& top = report.entries.front();
    std::printf("dominant category at 48 cores: %s (%.0f%% of stalls)\n",
                top.category.c_str(), 100.0 * top.share_at_target);
    if (top.domain == core::StallDomain::kSoftware) {
      std::printf("=> software-level synchronisation is the future "
                  "bottleneck;\n   use perf on the reporting call sites to "
                  "pinpoint the code.\n");
    }

    // Apply the paper's fix and compare on the full machine.
    const std::string fixed_name = std::string(name) == "streamcluster"
                                       ? "streamcluster-spin"
                                       : "intruder-batched";
    const auto orig =
        sim::simulate(wl, machine, sim::all_core_counts(machine));
    const auto fixed = sim::simulate(sim::presets::workload(fixed_name),
                                     machine, sim::all_core_counts(machine));
    double best_gain = 0.0;
    for (std::size_t i = 0; i < orig.cores.size(); ++i) {
      best_gain = std::max(
          best_gain, 100.0 * (orig.time_s[i] - fixed.time_s[i]) /
                         orig.time_s[i]);
    }
    std::printf("after the fix (%s): up to %.0f%% faster\n",
                fixed_name.c_str(), best_gain);
  }
  return 0;
}
