// Capacity planning for a production service (the Section 4.3 scenario):
// drive the in-process memcached stand-in on this machine at a few thread
// counts, collect its lock-wait cycles as the software stall category, and
// extrapolate whether a bigger box would help.
//
// This example uses the real KvStore substrate (not the simulator), so
// the numbers depend on the machine it runs on.
#include <chrono>
#include <cstdio>

#include "core/predictor.hpp"
#include "counters/sampler.hpp"
#include "kvstore/kvstore.hpp"

int main() {
  using namespace estima;
  using Clock = std::chrono::steady_clock;

  kv::ClientConfig client_cfg;
  client_cfg.operations = 400000;
  client_cfg.key_count = 20000;
  client_cfg.get_ratio = 0.95;  // the paper's read-mostly workload

  auto campaign = counters::run_campaign(
      "kvstore-readmostly",
      [&](int threads) {
        counters::RunReport report;
        // Fresh store per run so cache state does not leak across points.
        kv::KvStore store(16, 4096);
        const auto t0 = Clock::now();
        const auto r = kv::run_clients(store, threads, client_cfg);
        (void)t0;
        report.software_stalls["lock_spin_cycles"] =
            r.lock_spin_cycles + 1.0;
        return report;
      },
      {1, 2, 3, 4, 5, 6}, {});

  std::printf("measured kvstore campaign:\n%8s %12s %22s\n", "threads",
              "time (s)", "lock_spin_cycles");
  for (std::size_t i = 0; i < campaign.cores.size(); ++i) {
    double spin = 0.0;
    for (const auto& cat : campaign.categories) {
      if (cat.name == "lock_spin_cycles") spin = cat.values[i];
    }
    std::printf("%8d %12.4f %22.4g\n", campaign.cores[i],
                campaign.time_s[i], spin);
  }

  core::PredictionConfig cfg;
  cfg.target_cores = core::cores_up_to(32);
  cfg.extrap.min_prefix = 2;
  cfg.extrap.checkpoint_counts = {1, 2};
  const auto pred = core::predict(campaign, cfg);

  std::printf("\npredicted service time on bigger boxes:\n");
  for (int n : {8, 12, 16, 24, 32}) {
    for (std::size_t i = 0; i < pred.cores.size(); ++i) {
      if (pred.cores[i] == n) {
        std::printf("  %2d cores: %.4f s per %llu-op batch\n", n,
                    pred.time_s[i],
                    static_cast<unsigned long long>(client_cfg.operations));
      }
    }
  }
  const int best = pred.best_core_count();
  std::printf("\ncapacity verdict: throughput stops improving at ~%d cores"
              "%s\n",
              best,
              best < 24 ? " -- buying a bigger box will NOT help; shard or "
                          "reduce lock contention instead"
                        : " -- a bigger box helps");
  return 0;
}
