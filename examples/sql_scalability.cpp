// Database scalability screening: run the TPC-C-lite mix on the in-memory
// SQL engine at increasing thread counts, feed the lock-wait cycles to
// ESTIMA, and find out how many cores this schema can actually use --
// exactly the SQLite question of Section 4.3, against our own engine.
#include <cstdio>

#include "core/predictor.hpp"
#include "counters/sampler.hpp"
#include "sqldb/sqldb.hpp"

int main() {
  using namespace estima;

  sql::TpccConfig tpcc;
  tpcc.warehouses = 2;  // few warehouses => write contention, like SQLite
  tpcc.transactions = 60000;

  auto campaign = counters::run_campaign(
      "tpcc-lite",
      [&](int threads) {
        counters::RunReport report;
        sql::Database db;
        sql::tpcc_populate(db, tpcc);
        const auto r = sql::tpcc_run(db, threads, tpcc);
        if (!r.consistent) {
          std::fprintf(stderr, "WARNING: consistency check failed\n");
        }
        report.software_stalls["lock_spin_cycles"] =
            r.lock_spin_cycles + 1.0;
        return report;
      },
      {1, 2, 3, 4, 5, 6}, {});

  std::printf("TPC-C-lite campaign (%d warehouses):\n", tpcc.warehouses);
  for (std::size_t i = 0; i < campaign.cores.size(); ++i) {
    std::printf("  %d threads: %.4f s\n", campaign.cores[i],
                campaign.time_s[i]);
  }

  core::PredictionConfig cfg;
  cfg.target_cores = core::cores_up_to(32);
  cfg.extrap.min_prefix = 2;
  cfg.extrap.checkpoint_counts = {1, 2};
  const auto pred = core::predict(campaign, cfg);

  std::printf("\npredicted transaction-mix time at higher core counts:\n");
  for (int n : {8, 16, 24, 32}) {
    for (std::size_t i = 0; i < pred.cores.size(); ++i) {
      if (pred.cores[i] == n) {
        std::printf("  %2d cores: %.4f s\n", n, pred.time_s[i]);
      }
    }
  }
  std::printf("\nbest core count for this schema: %d\n",
              pred.best_core_count());
  std::printf("(increase tpcc.warehouses to see the prediction change)\n");
  return 0;
}
