// Quickstart: the five-minute ESTIMA experience.
//
// 1. Get a measurement campaign (here: the simulated Opteron measuring the
//    intruder benchmark on one socket -- swap in counters::run_campaign to
//    measure a real application).
// 2. Call core::predict for the core counts of the target machine.
// 3. Read off the predicted scalability and where it stops.
#include <cstdio>

#include "core/predictor.hpp"
#include "simmachine/machine.hpp"
#include "simmachine/presets.hpp"
#include "simmachine/simulator.hpp"

int main() {
  using namespace estima;

  // (A) Collect: stalled cycles + execution time at 1..12 cores.
  const auto machine = sim::opteron48();
  const auto workload = sim::presets::workload("intruder");
  const auto measurements =
      sim::simulate(workload, machine, sim::one_socket_counts(machine));

  std::printf("measured %zu points on %s (up to %d cores)\n",
              measurements.num_points(), measurements.machine.c_str(),
              measurements.cores.back());

  // (B)+(C) Extrapolate stalls and translate to execution time.
  core::PredictionConfig cfg;
  cfg.target_cores = sim::all_core_counts(machine);  // predict 1..48
  const auto prediction = core::predict(measurements, cfg);

  std::printf("\n%6s %14s\n", "cores", "pred time (s)");
  for (int n : {1, 4, 8, 12, 16, 24, 32, 48}) {
    for (std::size_t i = 0; i < prediction.cores.size(); ++i) {
      if (prediction.cores[i] == n) {
        std::printf("%6d %14.3f\n", n, prediction.time_s[i]);
      }
    }
  }

  std::printf("\npredicted best core count: %d of %d\n",
              prediction.best_core_count(), machine.total_cores());
  if (prediction.best_core_count() < machine.total_cores() * 3 / 4) {
    std::printf("=> the application stops scaling before the full machine;\n"
                "   check examples/bottleneck_analysis for the reason.\n");
  } else {
    std::printf("=> the application keeps scaling on this machine.\n");
  }
  return 0;
}
