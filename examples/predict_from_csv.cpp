// The ESTIMA command-line tool experience: read a measurement campaign
// from a CSV file, extrapolate to a target core count, optionally apply
// software-stall plugins, and print the prediction as CSV.
//
//   ./predict_from_csv <campaign.csv> [target_cores] [plugin.conf]
//
// CSV format (see core/measurement.hpp):
//   # workload=myapp machine=dev freq_ghz=3.4 dataset_bytes=1e9
//   cores,time_s,hw:0487h ...,sw:stm_abort_cycles
//   1,12.01,8.1e9,0
//   ...
// Plugin config lines (see core/plugin.hpp):
//   name=stm_aborts path=stm.log pattern='aborted: (\d+)' aggregate=sum
//
// With no arguments, a demo campaign is generated so the example is
// runnable out of the box.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/measurement.hpp"
#include "core/plugin.hpp"
#include "core/predictor.hpp"
#include "simmachine/machine.hpp"
#include "simmachine/presets.hpp"
#include "simmachine/simulator.hpp"

int main(int argc, char** argv) {
  using namespace estima;

  core::MeasurementSet campaign;
  if (argc > 1) {
    campaign = core::load_csv(argv[1]);
  } else {
    std::printf("(no CSV given: generating a demo campaign -- vacation-high "
                "on one Opteron socket)\n");
    campaign = sim::simulate(sim::presets::workload("vacation-high"),
                             sim::opteron48(), {1, 2, 3, 4, 5, 6, 7, 8, 9,
                                                10, 11, 12});
  }
  const int target = argc > 2 ? std::atoi(argv[2]) : 48;

  if (argc > 3) {
    // Harvest extra software-stall categories per measured point from
    // plugin-described files named <path>.<cores> (the common pattern when
    // a wrapped runtime writes one log per run).
    std::ifstream conf(argv[3]);
    std::stringstream buf;
    buf << conf.rdbuf();
    for (const auto& spec : core::parse_plugin_config(buf.str())) {
      core::StallSeries series{spec.category_name, spec.domain, {}};
      for (int n : campaign.cores) {
        core::PluginSpec per_run = spec;
        per_run.path = spec.path + "." + std::to_string(n);
        series.values.push_back(core::harvest_from_file(per_run));
      }
      campaign.categories.push_back(std::move(series));
      std::printf("plugin: added category %s\n", spec.category_name.c_str());
    }
  }

  core::PredictionConfig cfg;
  cfg.target_cores = core::cores_up_to(target);
  if (campaign.num_points() < 5) {
    cfg.extrap.min_prefix = 2;
    cfg.extrap.checkpoint_counts = {1, 2};
  }
  const auto pred = core::predict(campaign, cfg);

  std::printf("cores,predicted_time_s,stalls_per_core\n");
  for (std::size_t i = 0; i < pred.cores.size(); ++i) {
    std::printf("%d,%.6g,%.6g\n", pred.cores[i], pred.time_s[i],
                pred.stalls_per_core[i]);
  }
  std::fprintf(stderr, "best core count: %d (factor kernel %s, corr %.3f)\n",
               pred.best_core_count(),
               core::kernel_name(pred.factor_fn.type).c_str(),
               pred.factor_correlation);
  return 0;
}
