// Measuring a real multithreaded application: runs one of the native
// workloads (default: lock-based hash table) at increasing thread counts on
// THIS machine via counters::run_campaign -- hardware backend stalls from
// perf_event when the kernel allows it, software stalls always -- then
// extrapolates to a larger core count.
//
//   ./measure_native [workload] [max_measure_threads] [target_cores]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/predictor.hpp"
#include "counters/perf.hpp"
#include "counters/sampler.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace estima;

  const std::string name = argc > 1 ? argv[1] : "lock-based-ht";
  const int measure_threads = argc > 2 ? std::atoi(argv[2]) : 6;
  const int target_cores = argc > 3 ? std::atoi(argv[3]) : 24;

  wl::WorkloadOptions opts;
  opts.size = 1;
  auto workload = wl::make_workload(name, opts);

  std::printf("perf hardware counters: %s\n",
              counters::perf_available()
                  ? "available"
                  : "NOT available (container?); software stalls only");

  std::vector<int> counts;
  for (int i = 1; i <= measure_threads; ++i) counts.push_back(i);

  counters::SamplerOptions sampler_opts;
  sampler_opts.repetitions = 2;
  auto campaign = counters::run_campaign(
      name,
      [&](int threads) {
        counters::RunReport report;
        const auto r = workload->run(threads);
        if (!r.valid) std::fprintf(stderr, "WARNING: validation failed\n");
        report.software_stalls = {r.software_stalls.begin(),
                                  r.software_stalls.end()};
        // Guarantee a nonzero stall floor for the predictor even on
        // wait-free single-thread runs.
        report.software_stalls["lock_spin_cycles"] += 1.0;
        return report;
      },
      counts, sampler_opts);

  std::printf("\nmeasured campaign (freq ~%.2f GHz):\n", campaign.freq_ghz);
  std::printf("%8s %12s", "threads", "time (s)");
  for (const auto& cat : campaign.categories) {
    std::printf(" %26.26s", cat.name.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < campaign.cores.size(); ++i) {
    std::printf("%8d %12.4f", campaign.cores[i], campaign.time_s[i]);
    for (const auto& cat : campaign.categories) {
      std::printf(" %26.4g", cat.values[i]);
    }
    std::printf("\n");
  }

  core::PredictionConfig cfg;
  cfg.target_cores = core::cores_up_to(target_cores);
  cfg.extrap.min_prefix = 2;
  cfg.extrap.checkpoint_counts = {1, 2};
  const auto pred = core::predict(campaign, cfg);

  std::printf("\nprediction to %d cores:\n", target_cores);
  for (int n = 1; n <= target_cores; n += (n < 8 ? 1 : 4)) {
    for (std::size_t i = 0; i < pred.cores.size(); ++i) {
      if (pred.cores[i] == n) {
        std::printf("%8d %12.4f\n", n, pred.time_s[i]);
      }
    }
  }
  std::printf("predicted best core count: %d\n", pred.best_core_count());
  return 0;
}
