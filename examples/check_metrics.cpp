// CI smoke check for the observability surface: points at a running
// estima_serve, exercises the prediction path, then scrapes
// GET /v1/metrics and holds it to the Prometheus text grammar
// (obs::validate_prometheus_text) plus the stable stage schema — every
// stage histogram family must be present — and verifies the
// X-Estima-Trace-Id echo and GET /v1/trace shape.
//
//   ./example_check_metrics [--port=P] [--host=H] [--requests=N]
//
// Exit 0 when every check passes, 1 with the first violation on stderr.
#include <cstdio>
#include <sstream>
#include <string>

#include "bench/bench_util.hpp"
#include "core/measurement.hpp"
#include "net/client.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "tests/synthetic.hpp"

namespace {

std::string csv_of(const estima::core::MeasurementSet& ms) {
  std::ostringstream os;
  estima::core::write_csv(os, ms);
  return os.str();
}

int fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "check_metrics FAILED: %s: %s\n", what,
               detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace estima;
  using bench::parse_flag_d;
  using bench::parse_flag_s;

  const int port = static_cast<int>(parse_flag_d(argc, argv, "port", 8080));
  const std::string host = parse_flag_s(argc, argv, "host", "127.0.0.1");
  const int requests =
      static_cast<int>(parse_flag_d(argc, argv, "requests", 8));

  net::HttpClient client(host, port);
  try {
    // Exercise the full pipeline (cold computes + warm cache hits) so the
    // stage histograms have samples, not just registrations.
    for (int i = 0; i < requests; ++i) {
      testing::SyntheticSpec spec;
      spec.mem_rate = 0.25 + 0.02 * (i % 3);
      spec.noise = 0.02;
      const auto ms = testing::make_synthetic(
          spec, testing::counts_up_to(16),
          ("metrics-check-" + std::to_string(i % 3)).c_str());
      const std::string id = obs::format_trace_id(0xfeed0000u + i);
      const net::HttpResponse resp =
          client.request("POST", "/v1/predict", csv_of(ms),
                         {{"content-type", "text/plain"},
                          {"x-estima-trace-id", id}});
      if (resp.status != 200) {
        return fail("/v1/predict", "status " + std::to_string(resp.status) +
                                       ": " + resp.body);
      }
      const std::string* echoed = nullptr;
      for (const auto& [k, v] : resp.headers) {
        if (k == "x-estima-trace-id") echoed = &v;
      }
      if (echoed == nullptr) {
        return fail("trace echo", "response lacks x-estima-trace-id");
      }
      if (*echoed != id) {
        return fail("trace echo", "sent " + id + " got " + *echoed);
      }
    }

    const net::HttpResponse metrics = client.get("/v1/metrics");
    if (metrics.status != 200) {
      return fail("/v1/metrics",
                  "status " + std::to_string(metrics.status));
    }
    if (const auto err = obs::validate_prometheus_text(metrics.body)) {
      return fail("prometheus grammar", *err);
    }
    for (std::size_t i = 0; i < obs::kStageCount; ++i) {
      const std::string needle =
          "estima_stage_duration_seconds_count{stage=\"" +
          std::string(obs::stage_name(static_cast<obs::Stage>(i))) + "\"}";
      if (metrics.body.find(needle) == std::string::npos) {
        return fail("stage schema", "missing series " + needle);
      }
    }
    for (const char* family :
         {"estima_request_duration_seconds_count",
          "estima_service_campaigns_submitted_total",
          "estima_cache_hits_total", "estima_server_requests_served_total"}) {
      if (metrics.body.find(family) == std::string::npos) {
        return fail("metrics content", std::string("missing ") + family);
      }
    }

    const net::HttpResponse trace = client.get("/v1/trace");
    if (trace.status != 200) {
      return fail("/v1/trace", "status " + std::to_string(trace.status));
    }
    if (trace.body.find("\"traces\"") == std::string::npos) {
      return fail("/v1/trace", "body lacks a traces array");
    }
  } catch (const std::exception& e) {
    return fail("transport", e.what());
  }

  std::printf("check_metrics OK: grammar valid, %zu stage histograms, "
              "trace echo verified\n",
              obs::kStageCount);
  return 0;
}
