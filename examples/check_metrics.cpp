// CI smoke check for the observability surface: points at a running
// estima_serve, exercises the prediction path, then
//   * scrapes GET /v1/metrics and holds it to the Prometheus text grammar
//     (obs::validate_prometheus_text) plus the stable stage schema, the
//     per-kernel fit families and the estima_build_info gauge;
//   * verifies the X-Estima-Trace-Id echo and GET /v1/trace shape;
//   * POSTs /v1/explain and checks the audit JSON shape — and that the
//     audit's factor winner kernel matches the prediction actually served
//     by /v1/predict for the same campaign (provenance must describe the
//     answer, not some other fit);
//   * round-trips GET /v1/explain/{hash} against the retained audit;
//   * drives a full streaming-campaign lifecycle (PUT create -> POST
//     points append -> GET re-predict -> DELETE) and holds the
//     estima_service_campaign_* counter families to it;
//   * with --event-log=PATH, parses every line of the server's JSONL
//     event log as a flat JSON object with the stable key schema, and
//     asserts the campaign lifecycle's disposition lines are among them.
//
//   ./example_check_metrics [--port=P] [--host=H] [--requests=N]
//                           [--event-log=PATH]
//
// Exit 0 when every check passes, 1 with the first violation on stderr.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "bench/bench_util.hpp"
#include "core/measurement.hpp"
#include "core/prediction_io.hpp"
#include "net/client.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "tests/synthetic.hpp"

namespace {

std::string csv_of(const estima::core::MeasurementSet& ms) {
  std::ostringstream os;
  estima::core::write_csv(os, ms);
  return os.str();
}

int fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "check_metrics FAILED: %s: %s\n", what,
               detail.c_str());
  return 1;
}

/// The quoted string value following `"key": "` after `from` in a
/// JsonWriter document; empty when absent (checked values are never
/// legitimately empty here).
std::string string_value_after(const std::string& body, const std::string& key,
                               std::size_t from) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = body.find(needle, from);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = body.find('"', start);
  if (end == std::string::npos) return "";
  return body.substr(start, end - start);
}

/// Structural check for one JSONL event line: a single flat object whose
/// braces/quotes balance and whose every stable schema key is present.
/// (No JSON parser in the tree; this catches truncation, interleaving and
/// unescaped metacharacters, which is what the log contract promises.)
bool valid_event_line(const std::string& line) {
  if (line.size() < 2 || line.front() != '{' || line.back() != '}') {
    return false;
  }
  bool in_string = false;
  bool escaped = false;
  int depth = 0;
  for (char c : line) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++depth;
    else if (c == '}' && --depth < 0) return false;
  }
  if (depth != 0 || in_string || escaped) return false;
  for (const char* key :
       {"\"trace_id\":", "\"target\":", "\"status\":", "\"campaign_hash\":",
        "\"disposition\":", "\"winner_kernel\":", "\"latency_ms\":"}) {
    if (line.find(key) == std::string::npos) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace estima;
  using bench::parse_flag_d;
  using bench::parse_flag_s;

  const int port = static_cast<int>(parse_flag_d(argc, argv, "port", 8080));
  const std::string host = parse_flag_s(argc, argv, "host", "127.0.0.1");
  const int requests =
      static_cast<int>(parse_flag_d(argc, argv, "requests", 8));
  const std::string event_log = parse_flag_s(argc, argv, "event-log", "");

  net::HttpClient client(host, port);
  std::string explain_csv;      // campaign re-used by the explain checks
  std::string served_kernel;    // /v1/predict's factor kernel for it
  try {
    // Exercise the full pipeline (cold computes + warm cache hits) so the
    // stage histograms have samples, not just registrations.
    for (int i = 0; i < requests; ++i) {
      testing::SyntheticSpec spec;
      spec.mem_rate = 0.25 + 0.02 * (i % 3);
      spec.noise = 0.02;
      const auto ms = testing::make_synthetic(
          spec, testing::counts_up_to(16),
          ("metrics-check-" + std::to_string(i % 3)).c_str());
      const std::string id = obs::format_trace_id(0xfeed0000u + i);
      const net::HttpResponse resp =
          client.request("POST", "/v1/predict", csv_of(ms),
                         {{"content-type", "text/plain"},
                          {"x-estima-trace-id", id}});
      if (resp.status != 200) {
        return fail("/v1/predict", "status " + std::to_string(resp.status) +
                                       ": " + resp.body);
      }
      const std::string* echoed = nullptr;
      for (const auto& [k, v] : resp.headers) {
        if (k == "x-estima-trace-id") echoed = &v;
      }
      if (echoed == nullptr) {
        return fail("trace echo", "response lacks x-estima-trace-id");
      }
      if (*echoed != id) {
        return fail("trace echo", "sent " + id + " got " + *echoed);
      }
      if (i == 0) {
        explain_csv = csv_of(ms);
        std::istringstream is(resp.body);
        served_kernel =
            core::kernel_name(core::read_prediction(is).factor_fn.type);
      }
    }

    // Provenance: the explain audit must describe the served answer.
    const net::HttpResponse explain =
        client.request("POST", "/v1/explain", explain_csv,
                       {{"content-type", "text/plain"}});
    if (explain.status != 200) {
      return fail("/v1/explain", "status " + std::to_string(explain.status) +
                                     ": " + explain.body);
    }
    for (const char* key :
         {"\"campaign_hash\": \"", "\"prediction\": {", "\"audit\": {",
          "\"categories\": [", "\"factor\": {", "\"attempts\": [",
          "\"candidates\": [", "\"winner\": {", "\"scorecard\": ["}) {
      if (explain.body.find(key) == std::string::npos) {
        return fail("explain shape", std::string("missing ") + key);
      }
    }
    const std::string pred_kernel =
        string_value_after(explain.body, "factor_kernel", 0);
    const std::size_t factor_at = explain.body.find("\"factor\": {");
    const std::size_t winner_at = explain.body.find("\"winner\": {", factor_at);
    const std::string audit_kernel =
        winner_at == std::string::npos
            ? ""
            : string_value_after(explain.body, "kernel", winner_at);
    if (audit_kernel.empty() || audit_kernel != pred_kernel ||
        audit_kernel != served_kernel) {
      return fail("explain winner",
                  "audit factor winner '" + audit_kernel +
                      "' vs explain prediction '" + pred_kernel +
                      "' vs served prediction '" + served_kernel + "'");
    }
    const std::string hash = string_value_after(explain.body, "campaign_hash", 0);
    if (hash.empty()) return fail("explain hash", "no campaign_hash");
    const net::HttpResponse retained = client.get("/v1/explain/" + hash);
    if (retained.status != 200) {
      return fail("/v1/explain/{hash}",
                  "status " + std::to_string(retained.status));
    }
    if (retained.body != explain.body) {
      return fail("/v1/explain/{hash}",
                  "retained audit differs from the POSTed one");
    }

    // Streaming-campaign lifecycle: create from the first 10 points,
    // append the last 2, re-predict, delete — exactly what the campaign
    // counter families and the event-log dispositions must record.
    {
      testing::SyntheticSpec spec;
      spec.mem_rate = 0.31;
      spec.noise = 0.02;
      const auto full = testing::make_synthetic(
          spec, testing::counts_up_to(12), "metrics-campaign");
      auto tail = full;
      tail.cores.assign(full.cores.begin() + 10, full.cores.end());
      tail.time_s.assign(full.time_s.begin() + 10, full.time_s.end());
      for (std::size_t i = 0; i < tail.categories.size(); ++i) {
        tail.categories[i].values.assign(
            full.categories[i].values.begin() + 10,
            full.categories[i].values.end());
      }

      // A failed earlier attempt of this check (the CI step retries until
      // the server is up) may have left the campaign behind; a fresh PUT
      // after DELETE keeps the drive idempotent.
      (void)client.request("DELETE", "/v1/campaigns/ci-drive", "", {});
      const net::HttpResponse put =
          client.request("PUT", "/v1/campaigns/ci-drive",
                         csv_of(full.truncated(10)),
                         {{"content-type", "text/plain"}});
      if (put.status != 201) {
        return fail("campaign PUT", "status " + std::to_string(put.status) +
                                        ": " + put.body);
      }
      const net::HttpResponse appended =
          client.request("POST", "/v1/campaigns/ci-drive/points",
                         csv_of(tail), {{"content-type", "text/plain"}});
      if (appended.status != 200) {
        return fail("campaign POST points",
                    "status " + std::to_string(appended.status) + ": " +
                        appended.body);
      }
      for (const char* key : {"\"version\": 2", "\"points\": 12",
                              "\"appended\": 2", "\"memo_hits\""}) {
        if (appended.body.find(key) == std::string::npos) {
          return fail("campaign append report",
                      std::string("missing ") + key);
        }
      }
      const net::HttpResponse got = client.get("/v1/campaigns/ci-drive");
      if (got.status != 200) {
        return fail("campaign GET", "status " + std::to_string(got.status));
      }
      const net::HttpResponse del =
          client.request("DELETE", "/v1/campaigns/ci-drive", "", {});
      if (del.status != 200) {
        return fail("campaign DELETE",
                    "status " + std::to_string(del.status));
      }
      const net::HttpResponse gone = client.get("/v1/campaigns/ci-drive");
      if (gone.status != 404) {
        return fail("campaign GET after DELETE",
                    "expected 404, got " + std::to_string(gone.status));
      }
    }

    const net::HttpResponse metrics = client.get("/v1/metrics");
    if (metrics.status != 200) {
      return fail("/v1/metrics",
                  "status " + std::to_string(metrics.status));
    }
    if (const auto err = obs::validate_prometheus_text(metrics.body)) {
      return fail("prometheus grammar", *err);
    }
    for (std::size_t i = 0; i < obs::kStageCount; ++i) {
      const std::string needle =
          "estima_stage_duration_seconds_count{stage=\"" +
          std::string(obs::stage_name(static_cast<obs::Stage>(i))) + "\"}";
      if (metrics.body.find(needle) == std::string::npos) {
        return fail("stage schema", "missing series " + needle);
      }
    }
    for (const char* family :
         {"estima_request_duration_seconds_count",
          "estima_service_campaigns_submitted_total",
          "estima_cache_hits_total", "estima_server_requests_served_total",
          "estima_build_info{", "estima_service_explains_total",
          "estima_fit_attempts_total{", "estima_fit_seconds_count{"}) {
      if (metrics.body.find(family) == std::string::npos) {
        return fail("metrics content", std::string("missing ") + family);
      }
    }
    // The lifecycle above drove each campaign counter family (values are
    // not pinned — the CI step retries this whole binary until the server
    // is up, so an earlier partial attempt may have counted too); the
    // final delete does pin the active gauge back to 0.
    for (const char* needle :
         {"estima_service_campaign_creates_total",
          "estima_service_campaign_appends_total",
          "estima_service_campaign_deletes_total",
          "estima_service_campaign_invalidations_total",
          "estima_service_campaign_predictions_total",
          "estima_service_campaigns_active 0",
          "estima_cache_invalidations_total"}) {
      if (metrics.body.find(needle) == std::string::npos) {
        return fail("campaign metrics", std::string("missing ") + needle);
      }
    }
    // The served winner must have been counted by the per-kernel family.
    const std::string winner_series = "estima_fit_attempts_total{kernel=\"" +
                                      served_kernel + "\",outcome=\"winner\"}";
    if (metrics.body.find(winner_series) == std::string::npos) {
      return fail("fit metrics", "missing series " + winner_series);
    }

    const net::HttpResponse trace = client.get("/v1/trace");
    if (trace.status != 200) {
      return fail("/v1/trace", "status " + std::to_string(trace.status));
    }
    if (trace.body.find("\"traces\"") == std::string::npos) {
      return fail("/v1/trace", "body lacks a traces array");
    }
  } catch (const std::exception& e) {
    return fail("transport", e.what());
  }

  std::size_t event_lines = 0;
  if (!event_log.empty()) {
    // The log's writer thread flushes on an interval; give it a moment to
    // drain the requests above before holding the file to the schema. The
    // campaign lifecycle must be in there too: the append's re-prediction
    // is a miss by construction (its hash did not exist before), and the
    // GET right after it is a hit (the append warmed the cache).
    bool append_miss = false;
    bool get_hit = false;
    for (int attempt = 0;
         attempt < 30 && (event_lines == 0 || !append_miss || !get_hit);
         ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::ifstream in(event_log);
      if (!in) continue;
      std::string line;
      std::size_t seen = 0;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (!valid_event_line(line)) {
          return fail("event log", "bad JSONL line: " + line);
        }
        if (line.find("\"target\":\"/v1/campaigns/ci-drive/points\"") !=
                std::string::npos &&
            line.find("\"disposition\":\"miss\"") != std::string::npos) {
          append_miss = true;
        }
        if (line.find("\"target\":\"/v1/campaigns/ci-drive\"") !=
                std::string::npos &&
            line.find("\"disposition\":\"hit\"") != std::string::npos) {
          get_hit = true;
        }
        ++seen;
      }
      event_lines = seen;
    }
    if (event_lines == 0) {
      return fail("event log", "no lines appeared in " + event_log);
    }
    if (!append_miss) {
      return fail("event log",
                  "no miss-disposition line for the campaign append");
    }
    if (!get_hit) {
      return fail("event log",
                  "no hit-disposition line for the campaign GET");
    }
  }

  std::printf("check_metrics OK: grammar valid, %zu stage histograms, "
              "trace echo verified, explain audit verified%s\n",
              obs::kStageCount,
              event_log.empty()
                  ? ""
                  : (", " + std::to_string(event_lines) + " event line(s)")
                        .c_str());
  return 0;
}
