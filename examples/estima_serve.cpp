// The runnable serving daemon: ESTIMA's prediction service behind the
// dependency-free HTTP/1.1 edge.
//
//   ./example_estima_serve [flags]
//     --port=P             bind port (default 8080; 0 = ephemeral)
//     --address=A          bind address (default 127.0.0.1)
//     --threads=N          prediction pool size (default: hardware)
//     --http-threads=N     request-handler pool size (default 8)
//     --io-threads=N       event-loop (I/O) threads (default 2)
//     --max-connections=N  open-connection admission cap; over it new
//                          connections get 503 + close (default 4096,
//                          0 = unlimited)
//     --cache-capacity=N   cached predictions (default 4096)
//     --target=T           extrapolation horizon in cores (default 48)
//     --snapshot-file=PATH snapshot location: restored on startup when
//                          present (--restore=0 disables), spilled on
//                          SIGINT/SIGTERM drain, and enables POST
//                          /v1/snapshot
//     --restore=0|1        restore from --snapshot-file at startup (1)
//     --snapshot-every=K   auto-snapshot after every K computed
//                          predictions (0 = only on shutdown)
//     --max-queue-depth=N  handler-pool queue bound; over it the oldest
//                          queued request is shed 503 + Retry-After
//                          (default 256, 0 = unbounded)
//     --queue-delay-ms=D   a request queued longer than D ms is shed at
//                          dequeue instead of run (default 0 = off)
//     --cache-ttl-ms=T     cached predictions older than T ms read as
//                          misses but stay resident for serve-stale
//                          degradation (default 0 = never expire)
//     --slow-trace-ms=T    requests slower than T ms land in the slow
//                          ring served by GET /v1/trace and dumped on
//                          SIGUSR1 (default 250; 0 retains every
//                          request, negative disables the ring)
//     --trace-ring=N       slow-ring capacity (default 64)
//     --event-log=PATH     structured JSONL event log: one compact JSON
//                          line per request (trace id, target, status,
//                          campaign hash, cache disposition, winner
//                          kernel, latency) appended by a background
//                          writer thread; the hot path only enqueues
//                          into a wait-free ring (default: off)
//     --event-log-rotate-mb=N  rotate the event log when it would exceed
//                          N MiB, keeping one .1 predecessor (default 64)
//     --max-campaigns=N    resident named-campaign cap for the streaming
//                          /v1/campaigns routes (default 256)
//     --explain-retention=N POST /v1/explain responses retained for GET
//                          /v1/explain/{hash} (default 32, 0 disables)
//
// Serving surface (see src/service/routes.hpp for body formats):
//   POST /v1/predict        one CSV campaign -> one prediction record
//   POST /v1/predict_batch  length-framed CSV campaigns -> predictions
//   POST /v1/explain        one CSV campaign -> prediction + full fit
//                           audit (every attempt/candidate + winner
//                           scorecard) as JSON
//   GET  /v1/explain/{hash} the retained audit of a recently explained
//                           campaign (404 once evicted)
//   GET  /v1/stats          service + cache counters as JSON
//   GET  /v1/health         200 serving / 503 draining or shedding
//   POST /v1/snapshot       spill the cache to --snapshot-file
//   GET  /v1/metrics        Prometheus text exposition (counters,
//                           per-stage latency histograms, per-kernel
//                           fit attempt/latency families, build info)
//   GET  /v1/trace          slow-request ring: per-request span
//                           breakdowns as JSON
//
// Resilience: each request's 408 budget is propagated into the predictor
// as a cooperative deadline (plus any X-Estima-Deadline-Ms the client
// sends), overload sheds with 503 + Retry-After, and under shedding
// /v1/predict may serve an expired cache entry (X-Estima-Stale: 1).
//
// Observability: every request is traced (edge.read, queue.wait, parse,
// cache.lookup, fit.enumerate, fit.levmar, fit.realism, serialize,
// edge.write) with its id echoed in X-Estima-Trace-Id; SIGUSR1 prints
// the slow ring to stdout without disturbing serving.
//
// Shutdown is a graceful drain: on SIGINT/SIGTERM /v1/health flips to
// 503 "draining", the listener closes, in-flight responses finish, and
// the cache is snapshotted (when --snapshot-file is set) so the next
// start answers warm.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "bench/bench_util.hpp"
#include "core/fit_audit.hpp"
#include "core/predictor.hpp"
#include "net/server.hpp"
#include "obs/event_log.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "service/prediction_service.hpp"
#include "service/routes.hpp"
#include "tests/net_support.hpp"

namespace {

std::atomic<int> g_signal{0};
std::atomic<bool> g_dump_traces{false};

void on_signal(int sig) { g_signal.store(sig); }
void on_sigusr1(int) { g_dump_traces.store(true); }

void dump_slow_traces(const estima::obs::Tracer& tracer) {
  const auto slow = tracer.slow_traces();
  std::printf("slow-request ring: %zu trace(s)\n", slow.size());
  for (const auto& t : slow) {
    std::printf("  trace %s total=%.3fms\n",
                estima::obs::format_trace_id(t.trace_id).c_str(),
                static_cast<double>(t.total_ns) / 1e6);
    for (const auto& sp : t.spans) {
      std::printf("    %-13s start=%.3fms dur=%.3fms count=%llu%s\n",
                  estima::obs::stage_name(sp.stage),
                  static_cast<double>(sp.start_off_ns) / 1e6,
                  static_cast<double>(sp.total_ns) / 1e6,
                  static_cast<unsigned long long>(sp.count),
                  sp.nested ? " (nested)" : "");
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace estima;
  using bench::parse_flag_d;
  using bench::parse_flag_s;

  const int port = static_cast<int>(parse_flag_d(argc, argv, "port", 8080));
  const std::string address =
      parse_flag_s(argc, argv, "address", "127.0.0.1");
  const int threads = static_cast<int>(parse_flag_d(
      argc, argv, "threads",
      static_cast<double>(parallel::ThreadPool::hardware_threads())));
  const int http_threads =
      static_cast<int>(parse_flag_d(argc, argv, "http-threads", 8));
  const int io_threads =
      static_cast<int>(parse_flag_d(argc, argv, "io-threads", 2));
  const int max_connections =
      static_cast<int>(parse_flag_d(argc, argv, "max-connections", 4096));
  const int cache_capacity =
      static_cast<int>(parse_flag_d(argc, argv, "cache-capacity", 4096));
  const int target = static_cast<int>(parse_flag_d(argc, argv, "target", 48));
  const std::string snapshot_file =
      parse_flag_s(argc, argv, "snapshot-file", "");
  const bool restore = parse_flag_d(argc, argv, "restore", 1) != 0;
  const int snapshot_every =
      static_cast<int>(parse_flag_d(argc, argv, "snapshot-every", 0));
  const int max_queue_depth =
      static_cast<int>(parse_flag_d(argc, argv, "max-queue-depth", 256));
  const int queue_delay_ms =
      static_cast<int>(parse_flag_d(argc, argv, "queue-delay-ms", 0));
  const int cache_ttl_ms =
      static_cast<int>(parse_flag_d(argc, argv, "cache-ttl-ms", 0));
  const int slow_trace_ms =
      static_cast<int>(parse_flag_d(argc, argv, "slow-trace-ms", 250));
  const int trace_ring =
      static_cast<int>(parse_flag_d(argc, argv, "trace-ring", 64));
  const std::string event_log_path =
      parse_flag_s(argc, argv, "event-log", "");
  const int event_log_rotate_mb =
      static_cast<int>(parse_flag_d(argc, argv, "event-log-rotate-mb", 64));
  const int explain_retention =
      static_cast<int>(parse_flag_d(argc, argv, "explain-retention", 32));
  const int max_campaigns =
      static_cast<int>(parse_flag_d(argc, argv, "max-campaigns", 256));

  parallel::ThreadPool pool(
      static_cast<std::size_t>(threads > 0 ? threads : 1));

  // The observability spine: one registry holds every histogram and
  // counter; the tracer owns the per-stage histograms plus the
  // slow-request ring; the per-kernel fit metrics are wired into the
  // prediction config below (service config copies the pointer). All of
  // it lives for the whole process, outliving the server and router that
  // borrow it.
  obs::Registry registry;
  obs::TracerConfig tcfg;
  tcfg.slow_threshold_ms = slow_trace_ms;
  tcfg.ring_capacity =
      static_cast<std::size_t>(trace_ring > 0 ? trace_ring : 0);
  obs::Tracer tracer(registry, tcfg);
  core::FitMetrics fit_metrics;
  fit_metrics.init(registry);

  std::unique_ptr<obs::EventLog> event_log;
  if (!event_log_path.empty()) {
    obs::EventLogConfig ecfg;
    ecfg.path = event_log_path;
    ecfg.rotate_bytes = static_cast<std::size_t>(
                            event_log_rotate_mb > 0 ? event_log_rotate_mb : 64)
                        << 20;
    event_log = std::make_unique<obs::EventLog>(ecfg);
  }

  service::ServiceConfig scfg;
  scfg.prediction.extrap.metrics = &fit_metrics;
  scfg.prediction.target_cores = core::cores_up_to(target);
  scfg.cache_capacity = static_cast<std::size_t>(
      cache_capacity > 0 ? cache_capacity : 4096);
  scfg.cache_ttl_ms =
      static_cast<std::uint64_t>(cache_ttl_ms > 0 ? cache_ttl_ms : 0);
  if (snapshot_every > 0) {
    if (snapshot_file.empty()) {
      std::fprintf(stderr,
                   "--snapshot-every=%d needs --snapshot-file: there is "
                   "nowhere to write the periodic snapshots\n",
                   snapshot_every);
      return 1;
    }
    scfg.snapshot_every = static_cast<std::size_t>(snapshot_every);
    scfg.auto_snapshot_path = snapshot_file;
  }
  service::PredictionService svc(scfg, &pool);

  if (restore && !snapshot_file.empty() &&
      std::filesystem::exists(snapshot_file)) {
    try {
      const auto restored = svc.restore_from(snapshot_file);
      std::printf("restored %zu cached predictions from %s (%zu skipped)\n",
                  restored.entries_loaded(), snapshot_file.c_str(),
                  restored.skipped.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cold start, snapshot not restored: %s\n",
                   e.what());
    }
  }

  service::RouterConfig rcfg;
  rcfg.snapshot_path = snapshot_file;
  rcfg.explain_retention =
      static_cast<std::size_t>(explain_retention > 0 ? explain_retention : 0);
  rcfg.max_campaigns =
      static_cast<std::size_t>(max_campaigns > 0 ? max_campaigns : 256);
  service::ServiceRouter router(svc, rcfg);
  router.set_observability(&registry, &tracer);
  router.set_event_log(event_log.get());

  // One fd per connection plus listener/pipes/snapshot headroom: the
  // admission cap is only honest if the process may actually hold that
  // many sockets.
  if (max_connections > 0) {
    estima::testing::raise_fd_limit(
        static_cast<rlim_t>(max_connections) + 512);
  }

  net::ServerConfig ncfg;
  ncfg.bind_address = address;
  ncfg.port = port;
  ncfg.worker_threads =
      static_cast<std::size_t>(http_threads > 0 ? http_threads : 1);
  ncfg.io_threads = static_cast<std::size_t>(io_threads > 0 ? io_threads : 1);
  ncfg.max_connections =
      static_cast<std::size_t>(max_connections > 0 ? max_connections : 0);
  ncfg.max_queue_depth =
      static_cast<std::size_t>(max_queue_depth > 0 ? max_queue_depth : 0);
  ncfg.queue_delay_budget_ms = queue_delay_ms > 0 ? queue_delay_ms : 0;
  ncfg.tracer = &tracer;
  ncfg.event_log = event_log.get();
  net::HttpServer server(
      ncfg, [&router](const net::HttpRequest& req,
                      const net::RequestContext& ctx) {
        return router.handle(req, ctx);
      });
  router.set_server_stats_source([&server] { return server.stats(); });
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::printf("estima_serve listening on %s:%d "
              "(%d prediction threads, %d handler workers, %d io loops, "
              "cache %d, max %d connections)\n",
              address.c_str(), server.port(), threads, http_threads,
              io_threads, cache_capacity, max_connections);
  if (!snapshot_file.empty()) {
    std::printf("snapshot file: %s (auto every %d computed predictions)\n",
                snapshot_file.c_str(), snapshot_every);
  }
  if (event_log) {
    std::printf("event log: %s (rotate at %d MiB)\n", event_log_path.c_str(),
                event_log_rotate_mb);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGUSR1, on_sigusr1);
  while (g_signal.load() == 0) {
    if (g_dump_traces.exchange(false)) dump_slow_traces(tracer);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("signal %d: draining...\n", g_signal.load());
  // Health goes dark before the listener does, so a load balancer polling
  // /v1/health stops routing here while the drain still answers.
  router.set_draining(true);
  server.stop();

  if (!snapshot_file.empty()) {
    try {
      const auto written = svc.snapshot_to(snapshot_file);
      std::printf("snapshotted %zu cached predictions to %s\n",
                  written.entries_written, snapshot_file.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "shutdown snapshot not written: %s\n", e.what());
      return 1;
    }
  }
  if (event_log) {
    event_log->stop();
    std::printf("event log: %llu line(s) written, %llu dropped\n",
                static_cast<unsigned long long>(event_log->lines_written()),
                static_cast<unsigned long long>(event_log->lines_dropped()));
  }
  const auto stats = svc.stats();
  std::printf("served: submitted=%llu computed=%llu hits=%llu "
              "auto_snapshots=%llu\n",
              static_cast<unsigned long long>(stats.campaigns_submitted),
              static_cast<unsigned long long>(stats.predictions_computed),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.auto_snapshots));
  return 0;
}
