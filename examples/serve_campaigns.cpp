// The serving-layer experience: ingest a directory of measurement
// campaigns (*.csv), submit them as one predict_many() batch, and ask
// again to show the campaign-hash cache at work.
//
//   ./example_serve_campaigns [campaign_dir] [target_cores] [snapshot_file]
//
// With no arguments, a demo directory of synthetic campaigns is written
// next to the working directory first, so the example runs out of the box.
// Prints one line per campaign (best core count, predicted time at the
// target) plus serving throughput and the cache hit rate of the repeated
// submission.
//
// With a snapshot_file, the example demonstrates warm restarts: an
// existing snapshot is restored before serving (a second run answers every
// repeat campaign without recomputing — watch "computed" drop to 0), and
// the cache is spilled back to the snapshot on exit.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/predictor.hpp"
#include "parallel/thread_pool.hpp"
#include "service/ingest.hpp"
#include "service/prediction_service.hpp"
#include "tests/synthetic.hpp"

namespace {

std::string write_demo_dir() {
  const std::string dir = "serve_demo_campaigns";
  std::filesystem::create_directories(dir);
  for (int i = 0; i < 6; ++i) {
    estima::testing::SyntheticSpec spec;
    spec.mem_rate = 0.25 + 0.03 * i;
    spec.serial_frac = 0.004 + 0.002 * i;
    spec.stm_rate = i % 2 ? 1e-4 : 0.0;
    spec.noise = 0.02;
    const auto ms = estima::testing::make_synthetic(
        spec, estima::testing::counts_up_to(12),
        ("demo-workload-" + std::to_string(i)).c_str());
    estima::core::save_csv(dir + "/campaign_" + std::to_string(i) + ".csv",
                           ms);
  }
  return dir;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace estima;

  std::string dir;
  if (argc > 1) {
    dir = argv[1];
  } else {
    dir = write_demo_dir();
    std::printf("(no directory given: wrote demo campaigns to %s/)\n",
                dir.c_str());
  }
  const int target = argc > 2 ? std::atoi(argv[2]) : 48;
  const std::string snapshot_path = argc > 3 ? argv[3] : "";

  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "%s is not a readable directory\n", dir.c_str());
    return 1;
  }
  service::IngestReport report;
  try {
    report = service::ingest_directory(dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  for (const auto& err : report.errors) {
    std::fprintf(stderr, "skipped %s: %s\n", err.path.c_str(),
                 err.message.c_str());
  }
  if (report.campaigns.empty()) {
    std::fprintf(stderr, "no loadable *.csv campaigns under %s\n",
                 dir.c_str());
    return 1;
  }
  std::printf("ingested %zu campaigns (%zu rejected)\n",
              report.campaigns.size(), report.errors.size());

  parallel::ThreadPool pool(parallel::ThreadPool::hardware_threads());
  service::ServiceConfig scfg;
  scfg.prediction.target_cores = core::cores_up_to(target);
  service::PredictionService svc(scfg, &pool);

  // Warm restart: reload answers a previous run spilled to disk. Damage
  // is non-fatal (skipped entries are recomputed below); a missing file
  // just means a cold start.
  if (!snapshot_path.empty() && std::filesystem::exists(snapshot_path)) {
    try {
      const auto restored = svc.restore_from(snapshot_path);
      std::printf("restored %zu cached predictions from %s (%zu skipped)\n",
                  restored.entries_loaded(), snapshot_path.c_str(),
                  restored.skipped.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "snapshot not restored: %s\n", e.what());
    }
  }

  const auto batch = report.sets();
  const auto cold_start = std::chrono::steady_clock::now();
  const auto preds = svc.predict_many(batch);
  const double cold_s = seconds_since(cold_start);

  for (std::size_t i = 0; i < preds.size(); ++i) {
    std::printf("%-40s best %2d cores, %.4gs at %d cores\n",
                report.campaigns[i].path.c_str(),
                preds[i].best_core_count(), preds[i].time_s.back(), target);
  }

  // The same batch again: everything is served from the campaign cache.
  const auto before = svc.stats();
  const auto warm_start = std::chrono::steady_clock::now();
  svc.predict_many(batch);
  const double warm_s = seconds_since(warm_start);
  const auto after = svc.stats();
  const auto hits = after.cache.hits - before.cache.hits;
  const auto lookups = hits + (after.cache.misses - before.cache.misses);

  std::printf("cold: %.1f campaigns/s, warm: %.1f campaigns/s, "
              "repeat hit rate %.0f%% (%llu/%llu)\n",
              batch.size() / cold_s, batch.size() / warm_s,
              lookups ? 100.0 * static_cast<double>(hits) /
                            static_cast<double>(lookups)
                      : 0.0,
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(lookups));
  std::printf("computed %llu predictions this run\n",
              static_cast<unsigned long long>(after.predictions_computed));

  // Spill the cache so the next run of this process starts warm. The
  // campaigns were already served; a failed spill is a warning, not an
  // abort.
  if (!snapshot_path.empty()) {
    try {
      const auto written = svc.snapshot_to(snapshot_path);
      std::printf("snapshotted %zu cached predictions to %s\n",
                  written.entries_written, snapshot_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "snapshot not written: %s\n", e.what());
    }
  }

  // Scripted callers must be able to tell "served everything" from
  // "served a subset": a partially failed ingestion exits non-zero even
  // though the loadable campaigns were served above.
  if (!report.errors.empty()) {
    std::fprintf(stderr,
                 "%zu of %zu campaign files failed to ingest; exiting "
                 "non-zero (partial ingestion)\n",
                 report.errors.size(),
                 report.errors.size() + report.campaigns.size());
    return 1;
  }
  return 0;
}
